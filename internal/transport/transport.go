// Package transport abstracts the framed, bidirectional links the
// distributed engine runs over. The coordinator↔worker protocol
// (internal/distengine) is defined purely in terms of Frame, Conn,
// Transport, and Listener, so the same engine code runs unchanged over
// real TCP sockets (TCP), over in-process channels (Mem), or — in tests
// — over the fault-injecting wrapper (transport/faulty) that drops,
// delays, corrupts, or stalls frames on script.
//
// Every Send and Recv takes an explicit timeout: the engine's no-hang
// guarantee (a peer that stops responding surfaces as an error, never a
// stuck goroutine) is enforced at this layer, uniformly across
// implementations. A timeout failure satisfies
// errors.Is(err, os.ErrDeadlineExceeded); an operation on a torn-down
// link satisfies errors.Is(err, ErrClosed) or yields the underlying
// socket error.
package transport

import (
	"context"
	"errors"
	"time"
)

// ErrClosed reports an operation on a connection (or listener) that has
// been closed, locally or by the peer. The TCP implementation surfaces
// the stdlib's own errors (io.EOF, net.ErrClosed) instead; callers that
// only need "the link is dead" should treat any Send/Recv error that is
// not os.ErrDeadlineExceeded as fatal to the connection.
var ErrClosed = errors.New("transport: connection closed")

// Frame is one protocol frame: a one-byte type tag and an opaque
// payload. The transport layer never interprets either — framing,
// ordering, and delivery are its whole contract.
type Frame struct {
	Type    byte
	Payload []byte
}

// Conn is one ordered, reliable, bidirectional frame link between a
// coordinator and a worker.
//
// Send is safe for concurrent use (heartbeats interleave with protocol
// frames); Recv must have a single reader at a time. Close releases
// every blocked Send and Recv on both ends of the link and is
// idempotent.
type Conn interface {
	// Send writes one frame. A positive timeout bounds the whole write:
	// a peer that stops draining the link surfaces as an error wrapping
	// os.ErrDeadlineExceeded. A zero or negative timeout means no bound.
	Send(f Frame, timeout time.Duration) error
	// Recv returns the next frame. A positive timeout bounds the wait;
	// a silent peer surfaces as an error wrapping os.ErrDeadlineExceeded.
	// A zero or negative timeout means no bound. The returned payload is
	// owned by the caller.
	Recv(timeout time.Duration) (Frame, error)
	// Close tears the link down, releasing blocked operations on both
	// ends. Frames already delivered to the local receive buffer remain
	// readable on implementations that buffer (Mem); TCP follows socket
	// semantics.
	Close() error
}

// Listener accepts inbound framed connections on the worker side.
type Listener interface {
	// Accept blocks for the next inbound connection; it returns an error
	// after Close.
	Accept() (Conn, error)
	// Close stops accepting. It does not close already-accepted conns.
	Close() error
	// Addr returns the address peers dial to reach this listener.
	Addr() string
}

// Transport dials worker endpoints and opens listeners for them. Addr
// strings are transport-specific: host:port for TCP, registry names for
// Mem.
type Transport interface {
	// Dial opens a connection to the listener at addr, honoring ctx for
	// cancellation and deadline.
	Dial(ctx context.Context, addr string) (Conn, error)
	// Listen opens a listener at addr (implementations may support a
	// "pick for me" form, e.g. TCP port 0).
	Listen(addr string) (Listener, error)
}
