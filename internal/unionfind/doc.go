// Package unionfind provides a disjoint-set forest and a sequential
// connected-component labelling (CCL) baseline.
//
// The paper positions split-and-merge region growing against image
// component labelling (its reference [1]); the CCL baseline here labels
// maximal 4-connected components of pixels whose pairwise-adjacent
// intensity difference stays within the threshold. Unlike the region
// criterion, CCL chains local similarity, so it can leak across smooth
// gradients — the benchmark harness uses it as the classical comparator.
package unionfind
