package unionfind

import "regiongrow/internal/pixmap"

// DSU is a disjoint-set forest with union by size and path halving.
type DSU struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *DSU {
	d := &DSU{parent: make([]int32, n), size: make([]int32, n), sets: n}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != int32(x) {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = int(d.parent[x])
	}
	return x
}

// Union merges the sets of a and b and reports whether they were distinct.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	d.size[ra] += d.size[rb]
	d.sets--
	return true
}

// Same reports whether a and b are in one set.
func (d *DSU) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// SizeOf returns the number of elements in x's set.
func (d *DSU) SizeOf(x int) int { return int(d.size[d.Find(x)]) }

// MinLabels relabels every element with the smallest element index of its
// set, the canonical form the region engines use so that results are
// comparable across engines.
func (d *DSU) MinLabels() []int32 {
	n := len(d.parent)
	minOf := make([]int32, n)
	for i := range minOf {
		minOf[i] = int32(n) // sentinel: larger than any index
	}
	for i := 0; i < n; i++ {
		r := d.Find(i)
		if int32(i) < minOf[r] {
			minOf[r] = int32(i)
		}
	}
	labels := make([]int32, n)
	for i := 0; i < n; i++ {
		labels[i] = minOf[d.Find(i)]
	}
	return labels
}

// CCL labels 4-connected components of the image, joining adjacent pixels
// whose absolute intensity difference is at most tau. It returns the
// min-index labelling and the component count.
func CCL(im *pixmap.Image, tau int) (labels []int32, components int) {
	d := New(im.W * im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := im.Index(x, y)
			v := int(im.At(x, y))
			if x+1 < im.W && abs(v-int(im.At(x+1, y))) <= tau {
				d.Union(i, i+1)
			}
			if y+1 < im.H && abs(v-int(im.At(x, y+1))) <= tau {
				d.Union(i, i+im.W)
			}
		}
	}
	return d.MinLabels(), d.Sets()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
