package unionfind

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/pixmap"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Sets() != 5 || d.Len() != 5 {
		t.Fatalf("Sets=%d Len=%d", d.Sets(), d.Len())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("Find(%d) = %d", i, d.Find(i))
		}
		if d.SizeOf(i) != 1 {
			t.Fatalf("SizeOf(%d) = %d", i, d.SizeOf(i))
		}
	}
}

func TestUnionBasics(t *testing.T) {
	d := New(4)
	if !d.Union(0, 1) {
		t.Fatal("first union reported no-op")
	}
	if d.Union(1, 0) {
		t.Fatal("repeat union reported change")
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	if d.Sets() != 3 {
		t.Fatalf("Sets = %d", d.Sets())
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if d.Sets() != 1 || d.SizeOf(1) != 4 {
		t.Fatalf("Sets=%d SizeOf=%d", d.Sets(), d.SizeOf(1))
	}
}

// naive is a reference implementation using label arrays.
type naive struct{ label []int }

func newNaive(n int) *naive {
	l := make([]int, n)
	for i := range l {
		l[i] = i
	}
	return &naive{l}
}

func (nv *naive) union(a, b int) {
	la, lb := nv.label[a], nv.label[b]
	if la == lb {
		return
	}
	for i, l := range nv.label {
		if l == lb {
			nv.label[i] = la
		}
	}
}

func (nv *naive) same(a, b int) bool { return nv.label[a] == nv.label[b] }

func TestAgainstNaive(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		const n = 24
		d := New(n)
		nv := newNaive(n)
		for _, op := range ops {
			a, b := int(op)%n, int(op>>8)%n
			d.Union(a, b)
			nv.union(a, b)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.Same(i, j) != nv.same(i, j) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMinLabels(t *testing.T) {
	d := New(6)
	d.Union(3, 5)
	d.Union(1, 3)
	labels := d.MinLabels()
	want := []int32{0, 1, 2, 1, 4, 1}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("MinLabels = %v, want %v", labels, want)
		}
	}
}

func TestMinLabelsCanonical(t *testing.T) {
	// Property: the label of every element is the smallest index in its
	// set, and labels respect Same.
	err := quick.Check(func(ops []uint16) bool {
		const n = 20
		d := New(n)
		for _, op := range ops {
			d.Union(int(op)%n, int(op>>8)%n)
		}
		labels := d.MinLabels()
		for i := 0; i < n; i++ {
			if int(labels[i]) > i {
				return false // label must be ≤ own index
			}
			if labels[labels[i]] != labels[i] {
				return false // labels are fixed points
			}
			for j := 0; j < n; j++ {
				if (labels[i] == labels[j]) != d.Same(i, j) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCCLUniform(t *testing.T) {
	im := pixmap.Uniform(8, 50)
	labels, comps := CCL(im, 0)
	if comps != 1 {
		t.Fatalf("uniform image: %d components", comps)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("uniform image label not 0")
		}
	}
}

func TestCCLCheckerboard(t *testing.T) {
	im := pixmap.Checkerboard(8, 0, 255)
	_, comps := CCL(im, 0)
	if comps != 64 {
		t.Fatalf("checkerboard: %d components, want 64", comps)
	}
	// With a permissive threshold everything joins.
	_, comps = CCL(im, 255)
	if comps != 1 {
		t.Fatalf("tau=255: %d components, want 1", comps)
	}
}

func TestCCLGradientChaining(t *testing.T) {
	// The gradient's neighbours differ by ≤ ceil(255/15) = 17, so CCL with
	// tau=17 chains the whole ramp into one component even though the
	// total range is 255 — the failure mode the region criterion avoids.
	im := pixmap.Gradient(16, 255)
	_, comps := CCL(im, 17)
	if comps != 1 {
		t.Fatalf("gradient chained into %d components, want 1", comps)
	}
}

func TestCCLTwoRegions(t *testing.T) {
	im := pixmap.New(8, 8)
	im.FillRect(0, 0, 8, 8, 10)
	im.FillRect(2, 2, 6, 6, 200)
	labels, comps := CCL(im, 5)
	if comps != 2 {
		t.Fatalf("nested rect CCL: %d components", comps)
	}
	if labels[0] == labels[im.Index(3, 3)] {
		t.Fatal("inner and outer share a label")
	}
}
