// Package regiongrow reproduces "Solving the Region Growing Problem on the
// Connection Machine" (Copty, Ranka, Fox, Shankar; ICPP 1993): parallel
// image segmentation by split-and-merge region growing, in five execution
// models — a sequential reference, a data-parallel (CM Fortran / CM-2
// style) engine on a simulated SIMD machine, a message-passing
// (F77 + CMMD / CM-5 style) engine on a simulated multicomputer with the
// paper's Linear Permutation and Async communication schemes, a native
// shared-memory engine that runs the algorithm on host goroutines with no
// simulated machine, and a distributed engine that runs the same
// message-passing protocol across real regiongrow-worker processes over
// TCP (New(Distributed, WithClusterWorkers(addrs))).
//
// Quick start — construct a reusable Segmenter session and run it with a
// context:
//
//	s, _ := regiongrow.New(regiongrow.SequentialEngine)
//	im := regiongrow.GeneratePaperImage(regiongrow.Image3Circles128)
//	seg, err := s.Segment(ctx, im, regiongrow.Config{
//		Threshold: 10,
//		Tie:       regiongrow.RandomTie,
//		Seed:      1,
//	})
//	// seg.Labels assigns every pixel a region ID; seg.FinalRegions == 11.
//
// The Segmenter is the single code path every engine runs through:
// cancelling ctx aborts the run within one split/merge iteration, a
// WithObserver hook streams typed stage events (split done, merge
// iteration k, N merges), and an internal buffer pool makes repeated
// calls on same-size images allocate near zero for the split stage. To
// run one of the paper's machine configurations instead of the sequential
// engine, pick its kind:
//
//	s, _ := regiongrow.New(regiongrow.CM5Async)
//	seg, err := s.Segment(ctx, im, cfg)
//
// All engines produce identical segmentations for the same Config — the
// property-based test suite enforces it — so the engine choice affects
// only the simulated machine times reported in the Segmentation.
//
// The package-level one-shots (Segment, SegmentSerial, SegmentNative) and
// NewEngine remain as thin deprecated shims over Segmenter sessions,
// consolidated in compat.go.
package regiongrow

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"regiongrow/internal/core"
	"regiongrow/internal/machine"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
	"regiongrow/internal/regstats"
)

// Image is a gray-scale raster; see the pixmap documentation for methods.
type Image = pixmap.Image

// NewImage allocates a w×h image of black pixels.
func NewImage(w, h int) *Image { return pixmap.New(w, h) }

// LoadPGM reads a PGM (P2 or P5) file.
func LoadPGM(path string) (*Image, error) { return pixmap.LoadPGM(path) }

// SavePGM writes a binary PGM file.
func SavePGM(path string, im *Image) error { return pixmap.SavePGM(path, im) }

// ReadPGM decodes a PGM (P2 or P5) stream.
func ReadPGM(r io.Reader) (*Image, error) { return pixmap.ReadPGM(r) }

// WritePGM encodes the image as binary PGM (P5).
func WritePGM(w io.Writer, im *Image) error { return pixmap.WritePGM(w, im) }

// PaperImageID selects one of the paper's six evaluation images.
type PaperImageID = pixmap.PaperImageID

// The paper's six evaluation images.
const (
	Image1NestedRects128 = pixmap.Image1NestedRects128
	Image2Rects128       = pixmap.Image2Rects128
	Image3Circles128     = pixmap.Image3Circles128
	Image4NestedRects256 = pixmap.Image4NestedRects256
	Image5Rects256       = pixmap.Image5Rects256
	Image6Tool256        = pixmap.Image6Tool256
)

// AllPaperImages lists the six evaluation images in the paper's order.
func AllPaperImages() []PaperImageID { return pixmap.AllPaperImages() }

// GeneratePaperImage synthesises one of the paper's evaluation images.
func GeneratePaperImage(id PaperImageID) *Image {
	return pixmap.Generate(id, pixmap.DefaultGenOptions())
}

// Config parameterises a segmentation run; see core.Config.
type Config = core.Config

// Segmentation is a completed segmentation; see core.Segmentation.
type Segmentation = core.Segmentation

// Engine runs the split-and-merge algorithm in one execution model.
type Engine = core.Engine

// TiePolicy selects merge tie-breaking; see rag.TiePolicy.
type TiePolicy = rag.TiePolicy

// Tie-breaking policies. RandomTie is the paper's recommendation: it
// avoids the serialization that ID-based tie-breaking imposes on merges.
const (
	SmallestIDTie = rag.SmallestID
	LargestIDTie  = rag.LargestID
	RandomTie     = rag.Random
)

// EngineKind names an execution model plus machine configuration.
type EngineKind int

// Available engines. The CM-prefixed kinds simulate the paper's five
// machine configurations and report simulated stage times in
// Segmentation.SplitSim / MergeSim. NativeParallel runs the algorithm on
// host goroutines (worker pool sized to GOMAXPROCS) and reports host wall
// times only. Distributed runs it across real worker processes over TCP
// (construct with New and WithClusterWorkers) and reports wall times plus
// real communication counters in Segmentation.Comm.
const (
	SequentialEngine EngineKind = iota
	CM2DataParallel8K
	CM2DataParallel16K
	CM5DataParallel
	CM5LinearPermutation
	CM5Async
	NativeParallel
	Distributed
)

// String returns a stable name for the engine kind.
func (k EngineKind) String() string {
	switch k {
	case SequentialEngine:
		return "sequential"
	case CM2DataParallel8K:
		return "cm2-8k"
	case CM2DataParallel16K:
		return "cm2-16k"
	case CM5DataParallel:
		return "cm5-cmf"
	case CM5LinearPermutation:
		return "cm5-lp"
	case CM5Async:
		return "cm5-async"
	case NativeParallel:
		return "native"
	case Distributed:
		return "dist"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// parseableEngineKinds is every kind ParseEngineKind accepts: the five
// simulated configurations of AllEngineKinds plus the kinds that model
// no machine. Its order is the order enumerated in parse errors.
func parseableEngineKinds() []EngineKind {
	return []EngineKind{SequentialEngine, CM2DataParallel8K,
		CM2DataParallel16K, CM5DataParallel, CM5LinearPermutation, CM5Async,
		NativeParallel, Distributed}
}

// enumerate renders a parse error's valid-choice list ("a, b, or c") from
// the same enumerations the parse functions match against, so the message
// cannot drift from what is actually accepted.
func enumerate(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	}
	return strings.Join(names[:len(names)-1], ", ") + ", or " + names[len(names)-1]
}

// ParseEngineKind resolves the names printed by String. Matching is
// case-insensitive; the error enumerates every valid name.
func ParseEngineKind(s string) (EngineKind, error) {
	kinds := parseableEngineKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
		names[i] = k.String()
	}
	return 0, fmt.Errorf("regiongrow: unknown engine %q (valid engines: %s)", s, enumerate(names))
}

// MarshalText implements encoding.TextMarshaler with the String name, so
// JSON wire types (the job records of internal/server and the client SDK)
// and flag packages round-trip engine kinds without ad-hoc switches.
// Unknown kinds fail rather than emitting a name ParseEngineKind would
// reject.
func (k EngineKind) MarshalText() ([]byte, error) {
	s := k.String()
	if strings.HasPrefix(s, "EngineKind(") {
		return nil, fmt.Errorf("regiongrow: cannot marshal unknown engine kind %d", int(k))
	}
	return []byte(s), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseEngineKind
// (case-insensitive).
func (k *EngineKind) UnmarshalText(text []byte) error {
	v, err := ParseEngineKind(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// ParseTiePolicy resolves the names printed by TiePolicy.String
// ("smallest-id", "largest-id", "random"). Matching is case-insensitive.
// TiePolicy also implements encoding.TextMarshaler/TextUnmarshaler with
// the same names, so JSON wire types and flag packages round-trip
// policies directly.
func ParseTiePolicy(s string) (TiePolicy, error) {
	var p TiePolicy
	if err := p.UnmarshalText([]byte(s)); err != nil {
		policies := AllTiePolicies()
		names := make([]string, len(policies))
		for i, c := range policies {
			names[i] = c.String()
		}
		return 0, fmt.Errorf("regiongrow: unknown tie policy %q (valid tie policies: %s)", s, enumerate(names))
	}
	return p, nil
}

// ParsePaperImageID resolves a paper image by short name: "image1" through
// "image6" (or just "1" through "6"), case-insensitive. The error
// enumerates every valid name.
func ParsePaperImageID(s string) (PaperImageID, error) {
	id, err := pixmap.ParsePaperImageID(s)
	if err != nil {
		ids := AllPaperImageIDs()
		names := make([]string, len(ids))
		for i, v := range ids {
			names[i] = v.ShortName()
		}
		return 0, fmt.Errorf("regiongrow: unknown paper image %q (valid images: %s)", s, enumerate(names))
	}
	return id, nil
}

// MachineConfig returns the simulated machine configuration of an engine
// kind, and whether it has one (the sequential and native engines model no
// machine).
func (k EngineKind) MachineConfig() (machine.ConfigID, bool) {
	switch k {
	case CM2DataParallel8K:
		return machine.CM2_8K, true
	case CM2DataParallel16K:
		return machine.CM2_16K, true
	case CM5DataParallel:
		return machine.CM5_CMF, true
	case CM5LinearPermutation:
		return machine.CM5_LP, true
	case CM5Async:
		return machine.CM5_Async, true
	default:
		return 0, false
	}
}

// Unbounded disables the split-stage square cap when assigned to
// Config.MaxSquare.
const Unbounded = quadsplit.Unbounded

// AllEngineKinds lists the five simulated configurations in the order of
// the paper's tables. SequentialEngine and NativeParallel are not included:
// they model no machine, so they have no row in the paper's tables.
func AllEngineKinds() []EngineKind {
	return []EngineKind{CM2DataParallel8K, CM2DataParallel16K,
		CM5DataParallel, CM5LinearPermutation, CM5Async}
}

// AllTiePolicies lists every tie policy in declaration order — the set
// ParseTiePolicy accepts. Like AllEngineKinds, it is the enumeration UIs
// and flag help derive from, and the round-trip tests pin the parse
// functions to it so the lists cannot drift.
func AllTiePolicies() []TiePolicy { return rag.AllTiePolicies() }

// AllPaperImageIDs lists the six evaluation images in the paper's order —
// the set ParsePaperImageID accepts. It is AllPaperImages under the name
// that matches AllEngineKinds and AllTiePolicies; both remain.
func AllPaperImageIDs() []PaperImageID { return pixmap.AllPaperImages() }

// RegionStat summarises one final region: area, bounding box, centroid,
// mean intensity, perimeter, and adjacent regions.
type RegionStat = regstats.Region

// ComputeRegionStats derives per-region statistics from a segmentation.
func ComputeRegionStats(seg *Segmentation, im *Image) []RegionStat {
	return regstats.Compute(im, seg.Labels)
}

// SummarizeRegions aggregates region statistics.
func SummarizeRegions(rs []RegionStat) regstats.Summary { return regstats.Summarize(rs) }

// WriteRegionJSON emits region statistics as JSON.
func WriteRegionJSON(w io.Writer, rs []RegionStat) error { return regstats.WriteJSON(w, rs) }

// WriteRegionDOT emits the final region adjacency graph in Graphviz DOT
// form.
func WriteRegionDOT(w io.Writer, rs []RegionStat) error { return regstats.WriteDOT(w, rs) }

// Recolour paints every region of a segmentation with the midpoint of its
// intensity interval, producing an image in which the region structure is
// visible in any PGM viewer.
func Recolour(seg *Segmentation, im *Image) *Image {
	// Region IDs are anchor pixel indices (the smallest linear index in
	// the region), so they already index densely into [0, W·H): a flat
	// shade table replaces the per-pixel map lookup the hot loop used to
	// pay for. The table is one byte per pixel — the same size as the
	// output raster it feeds.
	shade := make([]uint8, im.W*im.H)
	for _, r := range seg.Regions {
		shade[r.ID] = uint8((int(r.IV.Lo) + int(r.IV.Hi)) / 2)
	}
	out := pixmap.New(im.W, im.H)
	for i, lab := range seg.Labels {
		out.Pix[i] = shade[lab]
	}
	return out
}

// Validate checks a segmentation's postconditions against its source
// image: valid partition, connected regions, per-region homogeneity, and
// no remaining mergeable adjacent pair.
func Validate(seg *Segmentation, im *Image, cfg Config) error {
	return core.Validate(seg, im, cfg.Criterion())
}

// CanonicalizeConfig normalizes cfg so that semantically equivalent
// configurations compare equal: the Seed is zeroed under the deterministic
// tie policies (it only drives Random draws, so it cannot affect SmallestID
// or LargestID output). Two canonicalized configs that compare equal are
// guaranteed to produce byte-identical Labels on the same image with the
// same engine — the invariant that makes result caching sound.
func CanonicalizeConfig(cfg Config) Config {
	if cfg.Tie != RandomTie {
		cfg.Seed = 0
	}
	return cfg
}

// HashImage returns a stable hex SHA-256 digest of an image's dimensions
// and pixel content.
func HashImage(im *Image) string {
	h := sha256.New()
	var dims [16]byte
	binary.LittleEndian.PutUint64(dims[0:8], uint64(im.W))
	binary.LittleEndian.PutUint64(dims[8:16], uint64(im.H))
	h.Write(dims[:])
	h.Write(im.Pix)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey derives a stable key for the result of segmenting im under cfg
// with the given engine kind. Equal keys guarantee byte-identical
// segmentations because every engine is deterministic: the key folds in
// the image content hash, the canonicalized config (Seed zeroed for
// deterministic ties, MaxSquare resolved to the effective power-of-two cap
// for this image via the shared quadsplit rule, so e.g. 0 and N/8 collide
// as they should), and the engine kind (all kinds produce identical Labels,
// but their reported timings differ, so responses are cached per kind).
func CacheKey(im *Image, cfg Config, kind EngineKind) string {
	return CacheKeyForHash(HashImage(im), im.W, im.H, cfg, kind)
}

// CacheKeyForHash is CacheKey for callers that already hold the image's
// content hash (as served by HashImage) — it saves re-hashing the pixels
// when the hash is also needed elsewhere, e.g. in a response body. The
// image dimensions resolve MaxSquare to its effective cap.
func CacheKeyForHash(imageHash string, w, h int, cfg Config, kind EngineKind) string {
	cfg = CanonicalizeConfig(cfg)
	eff := quadsplit.EffectiveCap(quadsplit.Options{MaxSquare: cfg.MaxSquare}, w, h)
	return fmt.Sprintf("%s|t=%d|tie=%s|seed=%d|sq=%d|eng=%s",
		imageHash, cfg.Threshold, cfg.Tie, cfg.Seed, eff, kind)
}
