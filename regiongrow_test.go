package regiongrow

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestEngineKindRoundTrip: every engine kind — the five simulated
// configurations plus the sequential and native engines — has a stable
// name that survives a String/ParseEngineKind round trip; unknown names
// are rejected with a descriptive error.
func TestEngineKindRoundTrip(t *testing.T) {
	kinds := append([]EngineKind{SequentialEngine, NativeParallel, Distributed}, AllEngineKinds()...)
	for _, k := range kinds {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "EngineKind(") {
			t.Errorf("kind %d has no stable name: %q", int(k), name)
		}
		parsed, err := ParseEngineKind(name)
		if err != nil || parsed != k {
			t.Errorf("round trip %v: %v, %v", k, parsed, err)
		}
	}
	// Matching is case-insensitive but not whitespace-forgiving.
	for name, want := range map[string]EngineKind{"Native": NativeParallel,
		"SEQUENTIAL": SequentialEngine, "Cm5-Async": CM5Async} {
		parsed, err := ParseEngineKind(name)
		if err != nil || parsed != want {
			t.Errorf("ParseEngineKind(%q) = %v, %v; want %v", name, parsed, err, want)
		}
	}
	for _, bad := range []string{"bogus", "", "sequential "} {
		_, err := ParseEngineKind(bad)
		if err == nil {
			t.Fatalf("parsed %q", bad)
		}
		if !strings.Contains(err.Error(), "unknown engine") || !strings.Contains(err.Error(), "native") {
			t.Errorf("ParseEngineKind(%q) error not descriptive: %v", bad, err)
		}
	}
}

// TestParseTiePolicy: tie policy names round-trip case-insensitively and
// unknown names are rejected with the valid choices in the error text.
func TestParseTiePolicy(t *testing.T) {
	for _, p := range []TiePolicy{SmallestIDTie, LargestIDTie, RandomTie} {
		parsed, err := ParseTiePolicy(p.String())
		if err != nil || parsed != p {
			t.Errorf("round trip %v: %v, %v", p, parsed, err)
		}
	}
	if p, err := ParseTiePolicy("Smallest-ID"); err != nil || p != SmallestIDTie {
		t.Errorf("ParseTiePolicy(Smallest-ID) = %v, %v", p, err)
	}
	_, err := ParseTiePolicy("coin-flip")
	if err == nil || !strings.Contains(err.Error(), "smallest-id") {
		t.Errorf("ParseTiePolicy(coin-flip) error not descriptive: %v", err)
	}
}

// TestParsePaperImageID: every paper image resolves by short name and by
// bare digit, case-insensitively; out-of-range names are rejected.
func TestParsePaperImageID(t *testing.T) {
	for i, id := range AllPaperImages() {
		for _, name := range []string{
			// e.g. "image3", "3", "IMAGE3"
			"image" + string(rune('1'+i)), string(rune('1' + i)), "IMAGE" + string(rune('1'+i)),
		} {
			parsed, err := ParsePaperImageID(name)
			if err != nil || parsed != id {
				t.Errorf("ParsePaperImageID(%q) = %v, %v; want %v", name, parsed, err, id)
			}
		}
	}
	for _, bad := range []string{"image0", "image7", "img3", "", "3.5"} {
		if _, err := ParsePaperImageID(bad); err == nil {
			t.Errorf("parsed %q", bad)
		}
	}
}

// TestCanonicalizeConfigAndCacheKey: the cache key is exactly as
// discriminating as the engines' determinism requires — seed inert under
// deterministic ties, MaxSquare resolved to its effective cap, everything
// else significant.
func TestCanonicalizeConfigAndCacheKey(t *testing.T) {
	im := GeneratePaperImage(Image1NestedRects128)
	base := Config{Threshold: 10, Tie: RandomTie, Seed: 1}

	if c := CanonicalizeConfig(Config{Tie: SmallestIDTie, Seed: 99}); c.Seed != 0 {
		t.Errorf("smallest-id seed not zeroed: %+v", c)
	}
	if c := CanonicalizeConfig(base); c.Seed != 1 {
		t.Errorf("random seed must survive canonicalization: %+v", c)
	}

	key := func(cfg Config, kind EngineKind) string { return CacheKey(im, cfg, kind) }
	same := [][2]Config{
		// Seed is inert under deterministic tie policies.
		{{Threshold: 10, Tie: SmallestIDTie, Seed: 1}, {Threshold: 10, Tie: SmallestIDTie, Seed: 2}},
		// 0 means N/8, which is 16 for a 128px image.
		{{Threshold: 10, Tie: RandomTie, Seed: 1, MaxSquare: 0}, {Threshold: 10, Tie: RandomTie, Seed: 1, MaxSquare: 16}},
	}
	for _, pair := range same {
		if key(pair[0], SequentialEngine) != key(pair[1], SequentialEngine) {
			t.Errorf("configs %+v and %+v should share a cache key", pair[0], pair[1])
		}
	}
	diff := []Config{
		{Threshold: 11, Tie: RandomTie, Seed: 1},
		{Threshold: 10, Tie: RandomTie, Seed: 2},
		{Threshold: 10, Tie: SmallestIDTie, Seed: 1},
		{Threshold: 10, Tie: RandomTie, Seed: 1, MaxSquare: 8},
	}
	for _, cfg := range diff {
		if key(base, SequentialEngine) == key(cfg, SequentialEngine) {
			t.Errorf("config %+v should not share the base cache key", cfg)
		}
	}
	if key(base, SequentialEngine) == key(base, NativeParallel) {
		t.Error("engine kinds should not share cache keys (their reported timings differ)")
	}
	im2 := GeneratePaperImage(Image2Rects128)
	if CacheKey(im, base, SequentialEngine) == CacheKey(im2, base, SequentialEngine) {
		t.Error("different images should not share cache keys")
	}
	if HashImage(im) == HashImage(im2) {
		t.Error("different images should not share content hashes")
	}
}

func TestMachineConfig(t *testing.T) {
	if _, ok := SequentialEngine.MachineConfig(); ok {
		t.Fatal("sequential should have no machine config")
	}
	if _, ok := NativeParallel.MachineConfig(); ok {
		t.Fatal("native should have no machine config")
	}
	for _, k := range AllEngineKinds() {
		if _, ok := k.MachineConfig(); !ok {
			t.Errorf("%v missing machine config", k)
		}
	}
}

func TestNewEngineAllKinds(t *testing.T) {
	for _, k := range append([]EngineKind{SequentialEngine, NativeParallel}, AllEngineKinds()...) {
		eng, err := NewEngine(k)
		if err != nil || eng == nil {
			t.Errorf("NewEngine(%v): %v", k, err)
		}
	}
	if _, err := NewEngine(EngineKind(99)); err == nil {
		t.Fatal("NewEngine(99) succeeded")
	}
}

func TestQuickstartFlow(t *testing.T) {
	im := GeneratePaperImage(Image2Rects128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	seg, err := Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seg.FinalRegions != 7 {
		t.Fatalf("final regions = %d, want 7", seg.FinalRegions)
	}
	if err := Validate(seg, im, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestImageIO(t *testing.T) {
	im := NewImage(8, 8)
	im.FillRect(0, 0, 8, 8, 42)
	path := filepath.Join(t.TempDir(), "x.pgm")
	if err := SavePGM(path, im); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(back) {
		t.Fatal("round trip failed")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-config experiment")
	}
	exp, err := RunExperiment(Image2Rects128, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 5 {
		t.Fatalf("rows = %d", len(exp.Rows))
	}
	if exp.FinalRegions != 7 {
		t.Fatalf("final regions = %d", exp.FinalRegions)
	}
	var sb strings.Builder
	WriteTable(&sb, exp)
	if !strings.Contains(sb.String(), "Image 2") {
		t.Fatal("table render wrong")
	}
	sb.Reset()
	WriteFigure3(&sb, []Experiment{exp})
	if !strings.Contains(sb.String(), "Figure 3") {
		t.Fatal("figure render wrong")
	}
	if bad := CheckOrderings([]Experiment{exp}); len(bad) > 0 {
		t.Fatalf("orderings violated: %v", bad)
	}
}

// TestCrossEngineEquivalence is the central integration test: every
// engine produces the identical segmentation for identical configs.
func TestCrossEngineEquivalence(t *testing.T) {
	im := GeneratePaperImage(Image3Circles128)
	for _, tie := range []TiePolicy{SmallestIDTie, RandomTie} {
		cfg := Config{Threshold: 10, Tie: tie, Seed: 1234}
		ref, err := Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range append([]EngineKind{NativeParallel}, AllEngineKinds()...) {
			eng, err := NewEngine(k)
			if err != nil {
				t.Fatal(err)
			}
			seg, err := eng.Segment(im, cfg)
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			if !ref.EqualLabels(seg) {
				t.Errorf("%v (tie=%v): segmentation differs from sequential", k, tie)
			}
			if ref.MergeIterations != seg.MergeIterations {
				t.Errorf("%v (tie=%v): merge iterations %d vs %d", k, tie, ref.MergeIterations, seg.MergeIterations)
			}
		}
	}
}

func TestTiePolicyAblation(t *testing.T) {
	// The paper's claim C1: random tie-breaking yields more merges per
	// iteration (fewer iterations) than smallest-ID on their inputs.
	im := GeneratePaperImage(Image1NestedRects128)
	smallest, err := Segment(im, Config{Threshold: 10, Tie: SmallestIDTie})
	if err != nil {
		t.Fatal(err)
	}
	random, err := Segment(im, Config{Threshold: 10, Tie: RandomTie, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if random.MergeIterations > smallest.MergeIterations {
		t.Fatalf("random (%d iters) should not need more iterations than smallest-id (%d)",
			random.MergeIterations, smallest.MergeIterations)
	}
	if random.FinalRegions != smallest.FinalRegions {
		t.Fatalf("policies disagree on final regions: %d vs %d",
			random.FinalRegions, smallest.FinalRegions)
	}
}
