package regiongrow

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestEngineKindRoundTrip: every engine kind — the five simulated
// configurations plus the sequential and native engines — has a stable
// name that survives a String/ParseEngineKind round trip; unknown names
// are rejected with a descriptive error.
func TestEngineKindRoundTrip(t *testing.T) {
	kinds := append([]EngineKind{SequentialEngine, NativeParallel}, AllEngineKinds()...)
	for _, k := range kinds {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "EngineKind(") {
			t.Errorf("kind %d has no stable name: %q", int(k), name)
		}
		parsed, err := ParseEngineKind(name)
		if err != nil || parsed != k {
			t.Errorf("round trip %v: %v, %v", k, parsed, err)
		}
	}
	for _, bad := range []string{"bogus", "", "Native", "sequential "} {
		_, err := ParseEngineKind(bad)
		if err == nil {
			t.Fatalf("parsed %q", bad)
		}
		if !strings.Contains(err.Error(), "unknown engine") || !strings.Contains(err.Error(), "native") {
			t.Errorf("ParseEngineKind(%q) error not descriptive: %v", bad, err)
		}
	}
}

func TestMachineConfig(t *testing.T) {
	if _, ok := SequentialEngine.MachineConfig(); ok {
		t.Fatal("sequential should have no machine config")
	}
	if _, ok := NativeParallel.MachineConfig(); ok {
		t.Fatal("native should have no machine config")
	}
	for _, k := range AllEngineKinds() {
		if _, ok := k.MachineConfig(); !ok {
			t.Errorf("%v missing machine config", k)
		}
	}
}

func TestNewEngineAllKinds(t *testing.T) {
	for _, k := range append([]EngineKind{SequentialEngine, NativeParallel}, AllEngineKinds()...) {
		eng, err := NewEngine(k)
		if err != nil || eng == nil {
			t.Errorf("NewEngine(%v): %v", k, err)
		}
	}
	if _, err := NewEngine(EngineKind(99)); err == nil {
		t.Fatal("NewEngine(99) succeeded")
	}
}

func TestQuickstartFlow(t *testing.T) {
	im := GeneratePaperImage(Image2Rects128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	seg, err := Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seg.FinalRegions != 7 {
		t.Fatalf("final regions = %d, want 7", seg.FinalRegions)
	}
	if err := Validate(seg, im, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestImageIO(t *testing.T) {
	im := NewImage(8, 8)
	im.FillRect(0, 0, 8, 8, 42)
	path := filepath.Join(t.TempDir(), "x.pgm")
	if err := SavePGM(path, im); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(back) {
		t.Fatal("round trip failed")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-config experiment")
	}
	exp, err := RunExperiment(Image2Rects128, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 5 {
		t.Fatalf("rows = %d", len(exp.Rows))
	}
	if exp.FinalRegions != 7 {
		t.Fatalf("final regions = %d", exp.FinalRegions)
	}
	var sb strings.Builder
	WriteTable(&sb, exp)
	if !strings.Contains(sb.String(), "Image 2") {
		t.Fatal("table render wrong")
	}
	sb.Reset()
	WriteFigure3(&sb, []Experiment{exp})
	if !strings.Contains(sb.String(), "Figure 3") {
		t.Fatal("figure render wrong")
	}
	if bad := CheckOrderings([]Experiment{exp}); len(bad) > 0 {
		t.Fatalf("orderings violated: %v", bad)
	}
}

// TestCrossEngineEquivalence is the central integration test: every
// engine produces the identical segmentation for identical configs.
func TestCrossEngineEquivalence(t *testing.T) {
	im := GeneratePaperImage(Image3Circles128)
	for _, tie := range []TiePolicy{SmallestIDTie, RandomTie} {
		cfg := Config{Threshold: 10, Tie: tie, Seed: 1234}
		ref, err := Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range append([]EngineKind{NativeParallel}, AllEngineKinds()...) {
			eng, err := NewEngine(k)
			if err != nil {
				t.Fatal(err)
			}
			seg, err := eng.Segment(im, cfg)
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			if !ref.EqualLabels(seg) {
				t.Errorf("%v (tie=%v): segmentation differs from sequential", k, tie)
			}
			if ref.MergeIterations != seg.MergeIterations {
				t.Errorf("%v (tie=%v): merge iterations %d vs %d", k, tie, ref.MergeIterations, seg.MergeIterations)
			}
		}
	}
}

func TestTiePolicyAblation(t *testing.T) {
	// The paper's claim C1: random tie-breaking yields more merges per
	// iteration (fewer iterations) than smallest-ID on their inputs.
	im := GeneratePaperImage(Image1NestedRects128)
	smallest, err := Segment(im, Config{Threshold: 10, Tie: SmallestIDTie})
	if err != nil {
		t.Fatal(err)
	}
	random, err := Segment(im, Config{Threshold: 10, Tie: RandomTie, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if random.MergeIterations > smallest.MergeIterations {
		t.Fatalf("random (%d iters) should not need more iterations than smallest-id (%d)",
			random.MergeIterations, smallest.MergeIterations)
	}
	if random.FinalRegions != smallest.FinalRegions {
		t.Fatalf("policies disagree on final regions: %d vs %d",
			random.FinalRegions, smallest.FinalRegions)
	}
}
