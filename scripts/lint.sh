#!/usr/bin/env sh
# lint.sh — the repo's whole static gate, runnable identically on a
# laptop and in CI: gofmt, go vet, the regiongrowvet analyzer suite
# (built from tools/regiongrowvet and run through `go vet -vettool`),
# and staticcheck (configured by staticcheck.conf). CI installs the
# pinned staticcheck first; locally the step is skipped with a notice
# when the binary is absent, so the script never needs the network.
#
# Usage: scripts/lint.sh   (from anywhere; it cds to the repo root)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l . | grep -v '^tools/regiongrowvet/vendor/' || true)
if [ -n "$out" ]; then
    echo "gofmt needed on:" >&2
    echo "$out" >&2
    exit 1
fi

echo "== go vet"
go vet ./...
(cd tools/regiongrowvet && go vet ./...)

echo "== regiongrowvet (build + self-test + tree scan)"
# CI caches the built binary under $REGIONGROWVET keyed on the hash of
# tools/regiongrowvet/**, so a cache hit skips the build entirely; the
# local default is a fresh temp path, which always rebuilds.
vettool=${REGIONGROWVET:-$(mktemp -d)/regiongrowvet}
if [ ! -x "$vettool" ]; then
    (cd tools/regiongrowvet && go build -o "$vettool" .)
fi
# The fixture tests are the injected-violation gate: every analyzer must
# flag its testdata true positives and honor its //vet: suppressions.
(cd tools/regiongrowvet && go test ./...)
go vet -vettool="$vettool" ./...

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
    (cd tools/regiongrowvet && staticcheck ./...)
else
    echo "staticcheck not installed; skipping (CI runs the pinned version)" >&2
fi

echo "lint: all clean"
