package regiongrow

import (
	"context"
	"fmt"
	"sync"

	"regiongrow/internal/core"
	"regiongrow/internal/distengine"
	"regiongrow/internal/shmengine"
)

// Observer receives typed stage events during a segmentation run: split
// start/done, graph built, every merge iteration (with its merge count),
// and completion. See core.Observer for the delivery contract; cancelling
// the run's context from inside Observe aborts the run within one
// split/merge iteration.
type Observer = core.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = core.ObserverFunc

// StageEvent is one progress event; see core.StageEvent for field
// population per kind.
type StageEvent = core.StageEvent

// EventKind names a stage event type.
type EventKind = core.EventKind

// The stage event kinds, in emission order.
const (
	EventSplitStart     = core.EventSplitStart
	EventSplitDone      = core.EventSplitDone
	EventGraphDone      = core.EventGraphDone
	EventMergeIteration = core.EventMergeIteration
	EventMergeDone      = core.EventMergeDone
)

// Segmenter is a reusable segmentation session bound to one engine kind.
// It is the context-first entry point to every engine: Segment threads
// ctx through split loops, RAG build, and merge rounds (cancellation
// returns ctx.Err() within one iteration on every engine), reports stage
// progress to the configured Observer, and recycles split-stage label and
// scratch buffers through an internal sync.Pool so repeated calls on
// same-size images approach zero steady-state allocation for the split
// stage.
//
// A Segmenter is safe for concurrent use; each call draws its own buffer
// set from the pool. Pooling never affects results: the property-based
// test suite pins pooled reuse byte-identical to fresh one-shot runs
// across all paper images, tie policies, and engines, so the determinism
// and cache-key invariants (CacheKey, CanonicalizeConfig) are untouched.
type Segmenter struct {
	kind     EngineKind
	eng      core.ContextEngine
	defaults Config
	observer Observer
	pooling  bool
	scratch  sync.Pool // of *core.Scratch
}

// Option configures a Segmenter at construction time.
type Option func(*Segmenter) error

// WithTie sets the session's default tie policy, used when Segment is
// called with a zero Config.
func WithTie(p TiePolicy) Option {
	return func(s *Segmenter) error {
		s.defaults.Tie = p
		return nil
	}
}

// WithThreshold sets the session's default homogeneity threshold, used
// when Segment is called with a zero Config.
func WithThreshold(t int) Option {
	return func(s *Segmenter) error {
		if t < 0 {
			return fmt.Errorf("regiongrow: negative threshold %d", t)
		}
		s.defaults.Threshold = t
		return nil
	}
}

// WithSeed sets the session's default random-tie seed, used when Segment
// is called with a zero Config.
func WithSeed(seed uint64) Option {
	return func(s *Segmenter) error {
		s.defaults.Seed = seed
		return nil
	}
}

// WithMaxSquare sets the session's default split square cap. It applies
// when the per-call Config leaves MaxSquare at 0 (which otherwise selects
// the paper's N/8 rule), so an explicit per-call cap always wins.
func WithMaxSquare(n int) Option {
	return func(s *Segmenter) error {
		if n < Unbounded {
			return fmt.Errorf("regiongrow: bad max square %d (want -1 unbounded, 0 default, or a positive cap)", n)
		}
		s.defaults.MaxSquare = n
		return nil
	}
}

// WithObserver sets the session observer. A per-call observer passed to
// SegmentObserved overrides it for that call.
func WithObserver(o Observer) Option {
	return func(s *Segmenter) error {
		s.observer = o
		return nil
	}
}

// WithBufferPool enables or disables the session's scratch-buffer pool.
// It is on by default; disable it when calls vary wildly in image size and
// retaining high-water-mark buffers is worse than reallocating.
func WithBufferPool(enabled bool) Option {
	return func(s *Segmenter) error {
		s.pooling = enabled
		return nil
	}
}

// WithWorkers fixes the native engine's worker-pool size (0 follows
// GOMAXPROCS). It is an error on any other engine kind — the simulated
// kinds model fixed machine configurations.
func WithWorkers(n int) Option {
	return func(s *Segmenter) error {
		if s.kind != NativeParallel {
			return fmt.Errorf("regiongrow: WithWorkers applies only to NativeParallel, not %v", s.kind)
		}
		if n < 0 {
			return fmt.Errorf("regiongrow: negative worker count %d", n)
		}
		s.eng = shmengine.NewWithWorkers(n)
		return nil
	}
}

// WithClusterWorkers points the Distributed engine at its worker
// processes (regiongrow-worker listen addresses, one band per worker —
// small images use a prefix of the list). It is required for, and only
// valid on, New(Distributed).
func WithClusterWorkers(addrs []string) Option {
	return func(s *Segmenter) error {
		if s.kind != Distributed {
			return fmt.Errorf("regiongrow: WithClusterWorkers applies only to Distributed, not %v", s.kind)
		}
		if len(addrs) == 0 {
			return fmt.Errorf("regiongrow: WithClusterWorkers needs at least one worker address")
		}
		s.eng = distengine.New(addrs)
		return nil
	}
}

// New constructs a reusable Segmenter for the engine kind. Options set
// session defaults (tie policy, threshold, seed, square cap), the
// progress observer, and buffer pooling; see the Option constructors.
func New(kind EngineKind, opts ...Option) (*Segmenter, error) {
	s := &Segmenter{kind: kind, pooling: true}
	if kind != Distributed {
		// The Distributed engine is constructed by WithClusterWorkers —
		// it is the one kind that cannot exist without configuration.
		eng, err := NewEngine(kind)
		if err != nil {
			return nil, err
		}
		ce, ok := eng.(core.ContextEngine)
		if !ok {
			// Unreachable: every shipped engine is context-aware; the
			// assertion guards future engine additions.
			return nil, fmt.Errorf("regiongrow: engine %v does not support contexts", kind)
		}
		s.eng = ce
	}
	s.scratch.New = func() any { return new(core.Scratch) }
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.eng == nil {
		return nil, fmt.Errorf("regiongrow: the distributed engine needs worker addresses; pass WithClusterWorkers")
	}
	return s, nil
}

// Kind returns the engine kind the session runs.
func (s *Segmenter) Kind() EngineKind { return s.kind }

// MemberHealth is one cluster worker's probe outcome, as reported by
// ClusterHealth.
type MemberHealth = distengine.MemberHealth

// cluster asserts the session runs the Distributed engine and returns it.
func (s *Segmenter) cluster() (*distengine.Engine, error) {
	eng, ok := s.eng.(*distengine.Engine)
	if !ok {
		return nil, fmt.Errorf("regiongrow: cluster membership applies only to Distributed, not %v", s.kind)
	}
	return eng, nil
}

// ClusterMembers returns the Distributed session's current worker
// addresses, in banding order. It errs on every other engine kind.
func (s *Segmenter) ClusterMembers() ([]string, error) {
	eng, err := s.cluster()
	if err != nil {
		return nil, err
	}
	return eng.Members(), nil
}

// ClusterJoin adds a worker address to the Distributed session's
// membership, effective at the next job — no restart, no reconstruction.
// It reports whether the membership changed (false for an address already
// present) and errs on every other engine kind or an empty address.
func (s *Segmenter) ClusterJoin(addr string) (bool, error) {
	eng, err := s.cluster()
	if err != nil {
		return false, err
	}
	if addr == "" {
		return false, fmt.Errorf("regiongrow: empty worker address")
	}
	return eng.AddMember(addr), nil
}

// ClusterLeave removes a worker address from the Distributed session's
// membership, effective at the next job; jobs already running against the
// worker are unaffected. Removing the last member is refused — a
// Distributed session never exists without at least one worker — and an
// address that was never a member reports false without error.
func (s *Segmenter) ClusterLeave(addr string) (bool, error) {
	eng, err := s.cluster()
	if err != nil {
		return false, err
	}
	members := eng.Members()
	if len(members) == 1 && members[0] == addr {
		return false, fmt.Errorf("regiongrow: cannot remove the last cluster worker %q", addr)
	}
	return eng.RemoveMember(addr), nil
}

// ClusterHealth probes every cluster member with a dial+ping+pong round
// trip and reports each outcome in membership order. It errs on every
// other engine kind.
func (s *Segmenter) ClusterHealth(ctx context.Context) ([]MemberHealth, error) {
	eng, err := s.cluster()
	if err != nil {
		return nil, err
	}
	return eng.Health(ctx), nil
}

// Engine exposes the underlying engine, mainly for Name.
func (s *Segmenter) Engine() Engine { return s.eng }

// effectiveConfig resolves a per-call Config against the session
// defaults: a zero Config selects the defaults wholesale; otherwise the
// call's fields win, except MaxSquare 0 (the "unset" value) falls back to
// the session cap.
func (s *Segmenter) effectiveConfig(cfg Config) Config {
	if cfg == (Config{}) {
		return s.defaults
	}
	if cfg.MaxSquare == 0 {
		cfg.MaxSquare = s.defaults.MaxSquare
	}
	return cfg
}

// Segment runs one segmentation under the session's engine, defaults, and
// observer. Cancelling ctx aborts the run within one split/merge
// iteration and returns ctx.Err(); the segmentation is then nil. Results
// are independent of pooling and identical to the package-level one-shots
// for the same effective Config.
func (s *Segmenter) Segment(ctx context.Context, im *Image, cfg Config) (*Segmentation, error) {
	return s.SegmentObserved(ctx, im, cfg, s.observer)
}

// SegmentObserved is Segment with a per-call observer (nil falls back to
// the session observer) — the hook a server uses to track per-job
// progress while sharing one pooled Segmenter across requests.
func (s *Segmenter) SegmentObserved(ctx context.Context, im *Image, cfg Config, obs Observer) (*Segmentation, error) {
	if obs == nil {
		obs = s.observer
	}
	run := core.Run{Observer: obs}
	if s.pooling {
		sc := s.scratch.Get().(*core.Scratch)
		defer s.scratch.Put(sc)
		run.Scratch = sc
	}
	return s.eng.SegmentContext(ctx, im, s.effectiveConfig(cfg), run)
}
