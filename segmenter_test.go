package regiongrow

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"regiongrow/internal/core"
)

// freshReference runs a throwaway context-free engine — no Segmenter, no
// pooling — as the ground truth pooled runs must match byte for byte.
func freshReference(t *testing.T, kind EngineKind, im *Image, cfg Config) *Segmentation {
	t.Helper()
	eng, err := NewEngine(kind)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := eng.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// TestSegmenterPooledReuseByteIdentical is the pooling acceptance
// property: one Segmenter per serving engine, reused across all six paper
// images × three tie policies × repeated calls, stays byte-identical to
// fresh one-shot runs — scratch reuse can never leak state between calls,
// so the determinism and cache-key invariants survive the redesign.
func TestSegmenterPooledReuseByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, kind := range []EngineKind{SequentialEngine, NativeParallel} {
		s, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range AllPaperImages() {
			im := GeneratePaperImage(id)
			for _, tie := range []TiePolicy{SmallestIDTie, LargestIDTie, RandomTie} {
				cfg := Config{Threshold: 10, Tie: tie, Seed: 1}
				ref := freshReference(t, kind, im, cfg)
				// Two pooled calls: the second reuses buffers the first
				// returned to the pool — the interesting case.
				for round := 1; round <= 2; round++ {
					seg, err := s.Segment(ctx, im, cfg)
					if err != nil {
						t.Fatalf("%v/%v/%v round %d: %v", kind, id, tie, round, err)
					}
					if !ref.EqualLabels(seg) {
						t.Fatalf("%v/%v/%v round %d: pooled labels differ from fresh run", kind, id, tie, round)
					}
				}
			}
		}
	}
}

// TestSegmenterPoolingDisabled: WithBufferPool(false) is still correct.
func TestSegmenterPoolingDisabled(t *testing.T) {
	s, err := New(SequentialEngine, WithBufferPool(false))
	if err != nil {
		t.Fatal(err)
	}
	im := GeneratePaperImage(Image3Circles128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	seg, err := s.Segment(context.Background(), im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !freshReference(t, SequentialEngine, im, cfg).EqualLabels(seg) {
		t.Fatal("unpooled Segmenter labels differ from fresh run")
	}
}

// TestSegmenterConcurrentUse: one pooled Segmenter shared by concurrent
// callers (the server's usage pattern) produces correct results for every
// caller. Run under -race this also proves the pool handoff is clean.
func TestSegmenterConcurrentUse(t *testing.T) {
	s, err := New(SequentialEngine)
	if err != nil {
		t.Fatal(err)
	}
	images := []PaperImageID{Image1NestedRects128, Image2Rects128, Image3Circles128}
	refs := make([]*Segmentation, len(images))
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	for i, id := range images {
		refs[i] = freshReference(t, SequentialEngine, GeneratePaperImage(id), cfg)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, id := range images {
				seg, err := s.Segment(context.Background(), GeneratePaperImage(id), cfg)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d, %v: %w", g, id, err)
					return
				}
				if !refs[i].EqualLabels(seg) {
					errs <- fmt.Errorf("goroutine %d, %v: labels differ", g, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSegmenterObserverSequence checks the typed event stream every engine
// emits: split start → split done → graph done → one event per merge
// iteration (1-based, contiguous) → merge done, with counts that
// reconcile against the returned Segmentation.
func TestSegmenterObserverSequence(t *testing.T) {
	im := GeneratePaperImage(Image1NestedRects128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	for _, kind := range []EngineKind{SequentialEngine, CM2DataParallel8K, CM5Async, NativeParallel} {
		t.Run(kind.String(), func(t *testing.T) {
			var mu sync.Mutex
			var events []StageEvent
			obs := ObserverFunc(func(ev StageEvent) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			})
			s, err := New(kind, WithObserver(obs))
			if err != nil {
				t.Fatal(err)
			}
			seg, err := s.Segment(context.Background(), im, cfg)
			if err != nil {
				t.Fatal(err)
			}

			if len(events) < 4 {
				t.Fatalf("only %d events", len(events))
			}
			if events[0].Kind != EventSplitStart {
				t.Fatalf("first event %v, want split-start", events[0].Kind)
			}
			last := events[len(events)-1]
			if last.Kind != EventMergeDone {
				t.Fatalf("last event %v, want merge-done", last.Kind)
			}
			if last.Regions != seg.FinalRegions || last.Iterations != seg.MergeIterations {
				t.Fatalf("merge-done reports %d regions / %d iterations, segmentation has %d / %d",
					last.Regions, last.Iterations, seg.FinalRegions, seg.MergeIterations)
			}
			var splitDone, graphDone bool
			var mergeIters, totalMerges int
			for _, ev := range events {
				switch ev.Kind {
				case EventSplitDone:
					splitDone = true
					if ev.Iterations != seg.SplitIterations || ev.Squares != seg.SquaresAfterSplit {
						t.Fatalf("split-done reports %d iters / %d squares, segmentation has %d / %d",
							ev.Iterations, ev.Squares, seg.SplitIterations, seg.SquaresAfterSplit)
					}
				case EventGraphDone:
					graphDone = true
				case EventMergeIteration:
					mergeIters++
					if ev.Iteration != mergeIters {
						t.Fatalf("merge iteration event %d arrived as number %d", ev.Iteration, mergeIters)
					}
					totalMerges += ev.Merges
				}
			}
			if !splitDone || !graphDone {
				t.Fatalf("missing stage events (split-done %v, graph-done %v)", splitDone, graphDone)
			}
			if mergeIters != seg.MergeIterations {
				t.Fatalf("%d merge iteration events, segmentation ran %d", mergeIters, seg.MergeIterations)
			}
			if want := seg.SquaresAfterSplit - seg.FinalRegions; totalMerges != want {
				t.Fatalf("events report %d merges, want %d (squares − final regions)", totalMerges, want)
			}
		})
	}
}

// TestSegmenterOptionDefaults: options act as session defaults — a zero
// Config selects them wholesale, an explicit Config wins, and a zero
// MaxSquare falls back to the session cap.
func TestSegmenterOptionDefaults(t *testing.T) {
	im := GeneratePaperImage(Image2Rects128)
	ctx := context.Background()

	explicit := Config{Threshold: 25, Tie: LargestIDTie, Seed: 7, MaxSquare: 8}
	ref := freshReference(t, SequentialEngine, im, explicit)

	s, err := New(SequentialEngine,
		WithThreshold(25), WithTie(LargestIDTie), WithSeed(7), WithMaxSquare(8))
	if err != nil {
		t.Fatal(err)
	}
	seg, err := s.Segment(ctx, im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.EqualLabels(seg) {
		t.Fatal("zero Config did not adopt the session defaults")
	}

	// MaxSquare fallback: an explicit config with MaxSquare 0 inherits the
	// session cap; all other fields stay the caller's.
	partial, err := s.Segment(ctx, im, Config{Threshold: 25, Tie: LargestIDTie, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.EqualLabels(partial) {
		t.Fatal("MaxSquare 0 did not fall back to the session cap")
	}

	// An explicit config overrides the defaults entirely.
	over := Config{Threshold: 10, Tie: SmallestIDTie, MaxSquare: Unbounded}
	want := freshReference(t, SequentialEngine, im, over)
	got, err := s.Segment(ctx, im, over)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualLabels(got) {
		t.Fatal("explicit Config did not override the session defaults")
	}
}

// TestSegmenterOptionErrors: invalid options fail construction with
// descriptive errors.
func TestSegmenterOptionErrors(t *testing.T) {
	if _, err := New(SequentialEngine, WithWorkers(4)); err == nil {
		t.Error("WithWorkers on the sequential engine did not error")
	}
	if _, err := New(NativeParallel, WithWorkers(-1)); err == nil {
		t.Error("negative WithWorkers did not error")
	}
	if _, err := New(SequentialEngine, WithThreshold(-1)); err == nil {
		t.Error("negative WithThreshold did not error")
	}
	if _, err := New(SequentialEngine, WithMaxSquare(-2)); err == nil {
		t.Error("WithMaxSquare(-2) did not error")
	}
	if _, err := New(EngineKind(99)); err == nil {
		t.Error("unknown engine kind did not error")
	}
}

// TestSegmenterWithWorkers: a fixed-size native session still matches the
// reference (worker count must never affect labels).
func TestSegmenterWithWorkers(t *testing.T) {
	im := GeneratePaperImage(Image3Circles128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	ref := freshReference(t, SequentialEngine, im, cfg)
	for _, n := range []int{1, 3} {
		s, err := New(NativeParallel, WithWorkers(n))
		if err != nil {
			t.Fatal(err)
		}
		seg, err := s.Segment(context.Background(), im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.EqualLabels(seg) {
			t.Fatalf("native with %d workers differs from sequential reference", n)
		}
	}
}

// TestShimsRouteThroughSegmenter: the deprecated package-level one-shots
// remain byte-identical to direct engine runs.
func TestShimsRouteThroughSegmenter(t *testing.T) {
	im := GeneratePaperImage(Image2Rects128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 3}
	ref, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaShim, err := Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.EqualLabels(viaShim) {
		t.Fatal("Segment shim differs from core.Sequential")
	}
	viaNative, err := SegmentNative(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.EqualLabels(viaNative) {
		t.Fatal("SegmentNative shim differs from core.Sequential")
	}
}
