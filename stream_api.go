package regiongrow

import (
	"context"
	"fmt"
	"io"

	"regiongrow/internal/core"
	"regiongrow/internal/stream"
)

// StreamResult reports what a streaming segmentation did; see
// stream.Result. It carries the run's statistics but no per-pixel label
// array — on the streaming path the full raster never exists in memory.
type StreamResult = stream.Result

// StreamOutput selects what SegmentStream emits.
type StreamOutput = stream.Output

// The streaming output formats. StreamRecolour emits a binary PGM
// byte-identical to WritePGM(Recolour(seg, im)) on the sequential engine's
// segmentation; StreamLabels emits the raw label raster in EncodeLabels
// form, byte-identical to encoding the sequential engine's Labels.
const (
	StreamRecolour = stream.OutputRecolour
	StreamLabels   = stream.OutputLabels
)

// streamSettings collects the resolved StreamOption state.
type streamSettings struct {
	opt stream.Options
	obs Observer
}

// StreamOption configures one SegmentStream call.
type StreamOption func(*streamSettings) error

// WithStreamBandRows requests a band height in rows. The driver rounds it
// down to a multiple of the effective split cap and raises it to at least
// one cap — the alignment that keeps band-local splits equal to the global
// split. 0 (the default) selects one cap per band, the minimum-memory
// configuration.
func WithStreamBandRows(n int) StreamOption {
	return func(s *streamSettings) error {
		if n < 0 {
			return fmt.Errorf("regiongrow: negative stream band rows %d", n)
		}
		s.opt.BandRows = n
		return nil
	}
}

// WithStreamSpoolDir hosts the square-spool temp file in dir instead of
// the system temp directory.
func WithStreamSpoolDir(dir string) StreamOption {
	return func(s *streamSettings) error {
		s.opt.SpoolDir = dir
		return nil
	}
}

// WithStreamOutput selects the emitted format (default StreamRecolour).
func WithStreamOutput(o StreamOutput) StreamOption {
	return func(s *streamSettings) error {
		if o != StreamRecolour && o != StreamLabels {
			return fmt.Errorf("regiongrow: unknown stream output %d", int(o))
		}
		s.opt.Output = o
		return nil
	}
}

// WithStreamObserver streams the run's typed stage events to o — the same
// Observer contract every Segmenter honours.
func WithStreamObserver(o Observer) StreamOption {
	return func(s *streamSettings) error {
		s.obs = o
		return nil
	}
}

// SegmentStream segments a PGM streamed from r and writes the result to w,
// holding only one pixel band, the band-boundary frontier, and the region
// graph in memory — never the full raster. It accepts images far beyond
// ReadPGM's materialisation limit (any geometry whose pixel indices fit in
// an int32) and produces output byte-identical to running the sequential
// engine on the same image with the same cfg.
//
// The standard engine contract applies: cancelling ctx aborts the run
// within one band or merge iteration and returns ctx.Err(), and a
// WithStreamObserver hook receives the usual stage events.
func SegmentStream(ctx context.Context, r io.Reader, w io.Writer, cfg Config, opts ...StreamOption) (*StreamResult, error) {
	var s streamSettings
	//vet:noctx option setters are O(1) field validation; stream.Segment carries the cancellation
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	return stream.Segment(ctx, r, w, cfg, core.Run{Observer: s.obs}, s.opt)
}

// EncodeLabels writes a segmentation's label raster in the StreamLabels
// wire format ("RGLS\n<w> <h>\n" then W·H little-endian int32 region IDs in
// raster order) — the encoding that lets an in-memory engine's result be
// compared byte-for-byte against a streamed StreamLabels run.
func EncodeLabels(w io.Writer, seg *Segmentation) error {
	return stream.EncodeLabels(w, seg.W, seg.H, seg.Labels)
}
