package regiongrow

import (
	"bytes"
	"context"
	"testing"
)

// TestSegmentStreamMatchesSequential pins the facade contract: streamed
// output is byte-identical to the sequential engine's, in both formats.
// (The exhaustive image × tie × band-geometry sweep lives in
// internal/stream; this guards the facade wiring.)
func TestSegmentStreamMatchesSequential(t *testing.T) {
	im := GeneratePaperImage(Image3Circles128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	seg, err := Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var pgm bytes.Buffer
	if err := WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}

	var wantLabels bytes.Buffer
	if err := EncodeLabels(&wantLabels, seg); err != nil {
		t.Fatal(err)
	}
	var gotLabels bytes.Buffer
	res, err := SegmentStream(context.Background(), bytes.NewReader(pgm.Bytes()), &gotLabels, cfg,
		WithStreamOutput(StreamLabels), WithStreamBandRows(40), WithStreamSpoolDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotLabels.Bytes(), wantLabels.Bytes()) {
		t.Error("streamed labels differ from the sequential engine")
	}
	if res.FinalRegions != seg.FinalRegions {
		t.Errorf("FinalRegions = %d, sequential %d", res.FinalRegions, seg.FinalRegions)
	}

	var wantPGM bytes.Buffer
	if err := WritePGM(&wantPGM, Recolour(seg, im)); err != nil {
		t.Fatal(err)
	}
	var gotPGM bytes.Buffer
	if _, err := SegmentStream(context.Background(), bytes.NewReader(pgm.Bytes()), &gotPGM, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPGM.Bytes(), wantPGM.Bytes()) {
		t.Error("streamed recoloured PGM differs from the sequential engine")
	}
}

// TestSegmentStreamObserver confirms the facade threads the observer and
// context through the standard contract.
func TestSegmentStreamObserver(t *testing.T) {
	im := GeneratePaperImage(Image1NestedRects128)
	var pgm bytes.Buffer
	if err := WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}
	var sawSplit, sawMergeDone bool
	obs := ObserverFunc(func(ev StageEvent) {
		switch ev.Kind {
		case EventSplitStart:
			sawSplit = true
		case EventMergeDone:
			sawMergeDone = true
		}
	})
	if _, err := SegmentStream(context.Background(), &pgm, &bytes.Buffer{},
		Config{Threshold: 10}, WithStreamObserver(obs)); err != nil {
		t.Fatal(err)
	}
	if !sawSplit || !sawMergeDone {
		t.Fatalf("observer missed events: split=%v mergeDone=%v", sawSplit, sawMergeDone)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pgm.Reset()
	if err := WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}
	if _, err := SegmentStream(ctx, &pgm, &bytes.Buffer{}, Config{Threshold: 10}); err != context.Canceled {
		t.Fatalf("cancelled stream returned %v, want context.Canceled", err)
	}
}

// TestStreamOptionErrors pins option validation.
func TestStreamOptionErrors(t *testing.T) {
	if _, err := SegmentStream(context.Background(), &bytes.Buffer{}, &bytes.Buffer{},
		Config{}, WithStreamBandRows(-1)); err == nil {
		t.Error("accepted negative band rows")
	}
	if _, err := SegmentStream(context.Background(), &bytes.Buffer{}, &bytes.Buffer{},
		Config{}, WithStreamOutput(StreamOutput(99))); err == nil {
		t.Error("accepted an unknown output format")
	}
}
