// Package connguard implements the regiongrowvet analyzer that enforces
// the distributed engine's no-hang guarantee (PR 5): socket I/O must be
// deadline-bounded. A worker or coordinator blocked forever on a peer
// that silently died (half-open TCP, frozen process) leaks a goroutine —
// or hangs a whole job — with no way to cancel it from this side.
//
// In internal/distengine, internal/server, internal/transport, and the
// fleet's internal/gateway, the analyzer flags a net.Conn read or write
// that is not preceded — in source order within the same function — by
// a SetReadDeadline / SetWriteDeadline (or SetDeadline) call on the
// same conn. "Read" and "write" cover:
//
//   - direct conn.Read / conn.Write calls;
//   - io.ReadFull / io.ReadAtLeast / io.Copy / io.CopyN / io.WriteString
//     with the conn as the reader/writer argument;
//   - wrapping the conn in a bufio.Reader / bufio.Writer — buffered frame
//     I/O is still socket I/O, so the conn must carry a deadline before
//     the wrapper is built.
//
// Source-order precedence approximates dominance: the repo's I/O helpers
// are straight-line, so a deadline set earlier in the function dominates
// every later use. Functions that receive an already-guarded conn
// annotate the use //vet:nodeadline with a pointer to where the deadline
// is managed.
package connguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"regiongrow/tools/regiongrowvet/internal/directive"
	"regiongrow/tools/regiongrowvet/internal/vetutil"
)

var scope = map[string]bool{
	"regiongrow/internal/distengine": true,
	"regiongrow/internal/gateway":    true,
	"regiongrow/internal/server":     true,
	"regiongrow/internal/transport":  true,
}

var Analyzer = &analysis.Analyzer{
	Name: "rgconnguard",
	Doc: "flag net.Conn reads/writes not preceded by a deadline on the same conn in the enclosing function\n\n" +
		"Distengine and the server promise deadline-bounded frame I/O: a peer that stops " +
		"responding must surface as a timeout, not a hung goroutine. Suppress sites whose " +
		"deadline is managed elsewhere with //vet:nodeadline <where>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !vetutil.InScope(pass, scope) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || vetutil.InTestFile(pass, fn.Pos()) {
			return
		}
		checkFunc(pass, fn.Body)
	})
	return nil, nil
}

// connUse is one deadline-requiring I/O operation found in a function.
type connUse struct {
	pos  token.Pos
	node ast.Node
	key  string // canonical conn expression
	op   string // "read" or "write"
	desc string
}

// guard is one Set*Deadline call.
type guard struct {
	pos   token.Pos
	key   string
	read  bool
	write bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var uses []connUse
	var guards []guard

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// conn.Method(...) forms.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isConnLike(pass.TypesInfo.TypeOf(sel.X)) {
			key := exprKey(pass, sel.X)
			if key != "" {
				switch sel.Sel.Name {
				case "SetDeadline":
					guards = append(guards, guard{call.Pos(), key, true, true})
				case "SetReadDeadline":
					guards = append(guards, guard{call.Pos(), key, true, false})
				case "SetWriteDeadline":
					guards = append(guards, guard{call.Pos(), key, false, true})
				case "Read":
					uses = append(uses, connUse{call.Pos(), call, key, "read", "conn.Read"})
				case "Write":
					uses = append(uses, connUse{call.Pos(), call, key, "write", "conn.Write"})
				}
			}
		}

		// io.* helpers and bufio wrappers with a conn argument.
		if pkg, name, ok := pkgCall(pass, call); ok {
			check := func(argIdx int, op, desc string) {
				if argIdx >= len(call.Args) {
					return
				}
				arg := call.Args[argIdx]
				if isConnLike(pass.TypesInfo.TypeOf(arg)) {
					if key := exprKey(pass, arg); key != "" {
						uses = append(uses, connUse{call.Pos(), call, key, op, desc})
					}
				}
			}
			switch {
			case pkg == "io" && (name == "ReadFull" || name == "ReadAtLeast"):
				check(0, "read", "io."+name)
			case pkg == "io" && (name == "Copy" || name == "CopyN"):
				check(0, "write", "io."+name) // dst
				check(1, "read", "io."+name)  // src
			case pkg == "io" && name == "WriteString":
				check(0, "write", "io.WriteString")
			case pkg == "bufio" && name == "NewReader":
				check(0, "read", "bufio.NewReader over a conn")
			case pkg == "bufio" && (name == "NewWriter" || name == "NewWriterSize"):
				check(0, "write", "bufio.NewWriter over a conn")
			case pkg == "bufio" && name == "NewReaderSize":
				check(0, "read", "bufio.NewReader over a conn")
			}
		}
		return true
	})

	for _, u := range uses {
		ok := false
		for _, g := range guards {
			if g.key != u.key || g.pos >= u.pos {
				continue
			}
			if (u.op == "read" && g.read) || (u.op == "write" && g.write) {
				ok = true
				break
			}
		}
		if ok || directive.Has(pass, u.node, directive.NoDeadline) {
			continue
		}
		pass.Reportf(u.pos,
			"%s on %s without a prior Set%sDeadline on the same conn in this function: a silent peer blocks this goroutine forever (set a deadline first, or annotate //vet:nodeadline <where the deadline is managed>)",
			u.desc, u.key, map[string]string{"read": "Read", "write": "Write"}[u.op])
	}
}

// isConnLike reports whether t (or *t) has both deadline setters and
// Read/Write — structurally net.Conn, including *net.TCPConn and the
// net.Conn interface itself, and excluding bufio wrappers (no deadline
// setters).
func isConnLike(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	has := func(name string) bool {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
		return false
	}
	return has("SetReadDeadline") && has("SetWriteDeadline") && has("Read") && has("Write")
}

// exprKey canonicalizes a conn expression for matching guards to uses:
// the root identifier's object identity plus the selector/index path.
// Expressions rooted in something unresolvable yield "".
func exprKey(pass *analysis.Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(x)
		if obj == nil {
			return ""
		}
		// The object's name is enough within one function: a shadowing
		// redeclaration of a conn variable between guard and use is not a
		// pattern this repo's straight-line I/O helpers contain.
		return obj.Name()
	case *ast.SelectorExpr:
		base := exprKey(pass, x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := exprKey(pass, x.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.StarExpr:
		return exprKey(pass, x.X)
	default:
		return ""
	}
}

// pkgCall resolves a call of the form pkg.Func.
func pkgCall(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
