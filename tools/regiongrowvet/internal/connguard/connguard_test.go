package connguard

import (
	"testing"

	"regiongrow/tools/regiongrowvet/internal/vettest"
)

func TestFixture(t *testing.T) {
	vettest.Run(t, Analyzer, "../../testdata/connguard", "regiongrow/internal/distengine")
}

// Only distengine and server promise deadline-bounded I/O; the same code
// elsewhere is out of contract.
func TestOutOfScopeSilent(t *testing.T) {
	vettest.RunEmpty(t, Analyzer, "../../testdata/connguard", "regiongrow/internal/rag")
}
