// Package ctxloop implements the regiongrowvet analyzer that enforces
// the Segmenter cancellation contract from PR 3: cancelling the context
// aborts a run within one split pass / RAG band / merge round. The class
// of bug it catches is the unkillable phase-driving loop — a merge loop
// that spins until convergence with no ctx check, which once shipped in
// every engine and was eliminated by hand.
//
// In the engine and kernel packages, every *outermost* for loop of a
// function that takes a context.Context must either
//
//   - check the context (ctx.Err() / ctx.Done(), including in a select), or
//   - call a function that takes the context (delegating the check), or
//   - do no cancellable work: loops whose body calls nothing from this
//     module are exempt — an index-arithmetic loop over a band cannot
//     block, and per-pixel hot loops deliberately hoist the ctx check to
//     the enclosing phase loop.
//
// Nested loops inherit the outermost loop's per-iteration check (the
// contract's granularity is the phase boundary, not the pixel). Calls
// inside `go` statements and function literals are excluded from the
// "does work" test: the loop itself does not block on them. Deliberate
// exceptions are annotated //vet:noctx with a justification.
package ctxloop

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"regiongrow/tools/regiongrowvet/internal/directive"
	"regiongrow/tools/regiongrowvet/internal/vetutil"
)

// scope is the set of packages that implement core.ContextEngine plus
// the kernels that carry their cancellation (quadsplit's split passes,
// rag's merge-loop driver).
var scope = map[string]bool{
	"regiongrow":                     true,
	"regiongrow/internal/core":       true,
	"regiongrow/internal/quadsplit":  true,
	"regiongrow/internal/rag":        true,
	"regiongrow/internal/dpengine":   true,
	"regiongrow/internal/mpengine":   true,
	"regiongrow/internal/shmengine":  true,
	"regiongrow/internal/distengine": true,
	"regiongrow/internal/stream":     true,
}

// modulePrefix identifies same-module callees: a loop that only calls
// the stdlib (wg.Add, fmt.Errorf, append) is not running cancellable
// kernel work.
const modulePrefix = "regiongrow"

var Analyzer = &analysis.Analyzer{
	Name: "rgctxloop",
	Doc: "flag phase-driving loops in context-aware engines that never check their context\n\n" +
		"The Segmenter contract promises cancellation within one split/band/merge iteration; " +
		"an outermost loop in a ctx-taking function that calls module code but neither checks " +
		"ctx nor passes it on can spin unkillably. Suppress deliberate bounded loops with " +
		"//vet:noctx <why>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !vetutil.InScope(pass, scope) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || vetutil.InTestFile(pass, fn.Pos()) {
			return
		}
		if !hasCtxParam(pass, fn) {
			return
		}
		checkBody(pass, fn.Body)
	})
	return nil, nil
}

// hasCtxParam reports whether fn declares a context.Context parameter.
func hasCtxParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkBody walks a function body and reports outermost for loops that
// do module work without ctx discipline. Function literals start a fresh
// scope and are not checked (their loops run under whatever contract
// their call site has — typically a DriveCtx iterate callback whose
// driver checks ctx per round).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			checkLoop(pass, n, n.Body)
			return false // nested loops are covered by the outermost check
		case *ast.RangeStmt:
			checkLoop(pass, n, n.Body)
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
}

func checkLoop(pass *analysis.Pass, loop ast.Node, body *ast.BlockStmt) {
	if directive.Has(pass, loop, directive.NoCtx) {
		return
	}
	works := false
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned goroutine's calls do not block this loop, but a
			// ctx passed to it still counts as discipline (e.g. workers
			// receiving the ctx); check its args, skip its body.
			if callUsesCtx(pass, n.Call) {
				guarded = true
			}
			return false
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isCtxCheck(pass, n) || callUsesCtx(pass, n) {
				guarded = true
				return false
			}
			if isModuleCall(pass, n) {
				works = true
			}
		}
		return true
	})
	if works && !guarded {
		pass.Reportf(loop.Pos(),
			"loop in a context-aware function runs module code but never checks or forwards the context: cancellation cannot interrupt it (check ctx.Err() per iteration, pass ctx down, or annotate //vet:noctx <why>)")
	}
}

// isCtxCheck matches ctx.Err() and ctx.Done() on any context.Context
// value.
func isCtxCheck(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	return isContextType(pass.TypesInfo.TypeOf(sel.X))
}

// callUsesCtx reports whether any argument (or the receiver) of the call
// is a context.Context — the callee then owns the cancellation check.
func callUsesCtx(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isContextType(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
	}
	return false
}

// isModuleCall reports whether the callee is declared in this module
// (import path regiongrow or regiongrow/...). Method values, function
// values, and closures resolve through their object where possible;
// calls we cannot resolve (dynamic function values) count as module work
// — the conservative direction.
func isModuleCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return objInModule(pass.TypesInfo.ObjectOf(fun))
	case *ast.SelectorExpr:
		// Type conversions like int32(x) and stdlib selector calls
		// resolve to an object with a package path.
		return objInModule(pass.TypesInfo.ObjectOf(fun.Sel))
	default:
		// Dynamic call through a function value of unknown origin.
		if _, isType := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); isType {
			return true
		}
		return false
	}
}

func objInModule(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if _, isType := obj.(*types.TypeName); isType {
		return false // conversion, not a call
	}
	if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
		return false
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == modulePrefix || strings.HasPrefix(p, modulePrefix+"/")
}
