package ctxloop

import (
	"testing"

	"regiongrow/tools/regiongrowvet/internal/vettest"
)

func TestFixture(t *testing.T) {
	vettest.Run(t, Analyzer, "../../testdata/ctxloop", "regiongrow/internal/dpengine")
}

// internal/server is not a ContextEngine package; its loops are governed
// by net/http's own context plumbing.
func TestOutOfScopeSilent(t *testing.T) {
	vettest.RunEmpty(t, Analyzer, "../../testdata/ctxloop", "regiongrow/internal/server")
}
