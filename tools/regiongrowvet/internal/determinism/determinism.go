// Package determinism implements the regiongrowvet analyzer that guards
// the repo's central invariant: every engine produces byte-identical
// labels for the same (image, config), and the distributed engine's wire
// traffic is byte-stable run to run. The cache key, the replica-agnostic
// serving design, and the cross-engine property tests all assume it.
//
// Within the segmentation-kernel packages the analyzer reports:
//
//  1. a `range` over a map whose body writes to anything declared outside
//     the loop, unless every written variable is passed to a sort
//     (sort.* / slices.Sort*) later in the same block — map iteration
//     order is randomized per run, so escaping writes ordered by it are
//     nondeterministic unless normalized;
//  2. any import of math/rand or math/rand/v2 — all randomness must flow
//     through internal/prand's counter-based pure functions, seeded from
//     the Config;
//  3. any call to time.Now or time.Since — wall-clock values must never
//     reach labels or wire bytes. Timing-only call sites (stage wall-time
//     reporting) are annotated //vet:timing.
//
// Deliberate exceptions to (1) — loops whose escaping writes commute
// across iteration orders, e.g. a min/OR reduction or a keyed transfer
// between maps — are annotated //vet:ordered with a justification.
// Writes via delete() are never reported: deleting a set of distinct
// keys commutes.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"regiongrow/tools/regiongrowvet/internal/directive"
	"regiongrow/tools/regiongrowvet/internal/vetutil"
)

// scope is the set of packages whose code feeds labels, stats, or wire
// bytes. internal/prand is the sanctioned randomness home and is
// excluded; internal/server and the CLIs legitimately use wall-clock
// time for TTLs and latency metrics and are covered by the ctxloop and
// connguard analyzers instead.
var scope = map[string]bool{
	"regiongrow":                     true,
	"regiongrow/internal/core":       true,
	"regiongrow/internal/quadsplit":  true,
	"regiongrow/internal/rag":        true,
	"regiongrow/internal/unionfind":  true,
	"regiongrow/internal/homog":      true,
	"regiongrow/internal/regstats":   true,
	"regiongrow/internal/stats":      true,
	"regiongrow/internal/dpengine":   true,
	"regiongrow/internal/mpengine":   true,
	"regiongrow/internal/shmengine":  true,
	"regiongrow/internal/distengine": true,
	"regiongrow/internal/stream":     true,
	"regiongrow/internal/transport":  true,
	"regiongrow/internal/simdvm":     true,
	"regiongrow/internal/mpvm":       true,
}

var Analyzer = &analysis.Analyzer{
	Name: "rgdeterminism",
	Doc: "flag map-iteration-order, math/rand, and wall-clock leaks in the segmentation kernels\n\n" +
		"Byte-identical labels across engines are the repo's cache-key and wire contract; " +
		"this analyzer proves no kernel package lets randomized map order, unseeded randomness, " +
		"or wall-clock values reach output. Suppress single deliberate sites with //vet:ordered " +
		"(commuting writes) or //vet:timing (wall-time reporting only).",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !vetutil.InScope(pass, scope) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	checkImports(pass)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || vetutil.InTestFile(pass, n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkClockCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n, stack)
		}
		return true
	})
	return nil, nil
}

// checkImports bans math/rand in kernel packages (internal/prand is not
// in scope). Both v1 and v2 are rejected: their global generators are
// seeded per process, so anything they feed differs run to run.
func checkImports(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if vetutil.InTestFile(pass, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"math/rand is banned in kernel packages: randomness must flow through internal/prand so runs are a pure function of the Config seed")
			}
		}
	}
}

// checkClockCall reports time.Now / time.Since calls not annotated
// //vet:timing.
func checkClockCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Now" && sel.Sel.Name != "Since") {
		return
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "time" {
		return
	}
	if directive.Has(pass, call, directive.Timing) {
		return
	}
	pass.Reportf(call.Pos(),
		"time.%s in a kernel package: wall-clock values must not influence labels or wire bytes (annotate timing-only reporting sites with //vet:timing <why>)",
		sel.Sel.Name)
}

// checkMapRange reports `range m` over a map whose body writes to
// variables declared outside the loop, unless every such variable is
// subsequently sorted in the enclosing block or the loop carries a
// //vet:ordered annotation.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if directive.Has(pass, rng, directive.Ordered) {
		return
	}

	written := escapingWrites(pass, rng)
	if len(written) == 0 {
		return
	}

	// Look for a later sort over each written variable in the statements
	// following the range within its enclosing block.
	unsorted := make([]*types.Var, 0, len(written))
	for _, v := range written {
		if !sortedAfter(pass, rng, stack, v) {
			unsorted = append(unsorted, v)
		}
	}
	if len(unsorted) == 0 {
		return
	}
	names := make([]string, len(unsorted))
	for i, v := range unsorted {
		names[i] = v.Name()
	}
	pass.Reportf(rng.Pos(),
		"range over map writes to %s without a subsequent sort: map iteration order is randomized, so the result depends on it (sort afterwards, iterate sorted keys, or annotate commuting writes with //vet:ordered <why>)",
		strings.Join(names, ", "))
}

// escapingWrites collects the distinct outer-declared variables the range
// body assigns to (plain and compound assignment, ++/--, and writes
// through an index or selector rooted at an outer variable). delete() is
// deliberately not a write: removing distinct keys commutes.
func escapingWrites(pass *analysis.Pass, rng *ast.RangeStmt) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	record := func(e ast.Expr) {
		v := rootVar(pass, e)
		if v == nil || seen[v] {
			return
		}
		// Declared inside the loop body (including the key/value vars,
		// whose declaration position is in the range header)?
		if v.Pos() >= rng.Pos() && v.Pos() < rng.End() {
			return
		}
		seen[v] = true
		out = append(out, v)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.UnaryExpr:
			// &x handed to a callee that may write through it.
			if n.Op == token.AND {
				record(n.X)
			}
		}
		return true
	})
	return out
}

// rootVar resolves the variable at the root of an assignable expression:
// x, x.f.g, x[i], *x. Blank identifiers and non-variables yield nil.
func rootVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			v, _ := pass.TypesInfo.ObjectOf(x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether some statement after rng in its innermost
// enclosing block (or a block further up the stack, for loops nested in
// ifs) passes v to a sort.* or slices.Sort* call.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node, v *types.Var) bool {
	// Walk outward: for each enclosing block, scan the statements after
	// the one containing rng.
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		after := false
		for _, stmt := range block.List {
			if !after {
				if stmt.Pos() <= rng.Pos() && rng.End() <= stmt.End() {
					after = true
				}
				continue
			}
			if stmtSorts(pass, stmt, v) {
				return true
			}
		}
	}
	return false
}

// stmtSorts reports whether stmt contains a sort.*/slices.Sort* call
// whose arguments mention v.
func stmtSorts(pass *analysis.Pass, stmt ast.Stmt, v *types.Var) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkgName.Imported().Path()
		isSort := path == "sort" ||
			(path == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether expr references v anywhere.
func mentions(pass *analysis.Pass, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}
