package determinism

import (
	"testing"

	"regiongrow/tools/regiongrowvet/internal/vettest"
)

func TestFixture(t *testing.T) {
	vettest.Run(t, Analyzer, "../../testdata/determinism", "regiongrow/internal/rag")
}

// The same code outside the kernel packages is none of this analyzer's
// business: internal/server uses wall-clock time for TTLs legitimately.
func TestOutOfScopeSilent(t *testing.T) {
	vettest.RunEmpty(t, Analyzer, "../../testdata/determinism", "regiongrow/internal/server")
}
