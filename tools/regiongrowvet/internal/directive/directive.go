// Package directive resolves the //vet: suppression annotations the
// regiongrowvet analyzers honour. An annotation is narrowly scoped: it
// applies to the one line it trails (or the line directly above a
// statement, comment-style), must name the specific check it suppresses,
// and should carry a justification after the name:
//
//	t0 := time.Now() //vet:timing split-stage wall clock, reporting only
//
//	//vet:ordered per-entry relabel; writes commute across iteration order
//	for v, adjSet := range st.adj {
package directive

import (
	"go/ast"
	"go/token"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// names of the recognised annotations, by analyzer.
const (
	Timing     = "timing"     // determinism: wall-clock call is timing-only
	Ordered    = "ordered"    // determinism: map-iteration order cannot reach output
	NoCtx      = "noctx"      // ctxloop: loop is bounded / cancellation rides another path
	NoDeadline = "nodeadline" // connguard: deadline handled elsewhere, justified
)

// commentsByFile lazily indexes the comment groups of a file.
type fileComments struct {
	lines map[int][]string // line -> comment texts on that line
}

// The cache is shared across analyzers, which unitchecker runs on
// concurrent goroutines.
var (
	cacheMu sync.Mutex
	cache   = map[*ast.File]*fileComments{}
)

func index(fset *token.FileSet, f *ast.File) *fileComments {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if fc, ok := cache[f]; ok {
		return fc
	}
	fc := &fileComments{lines: map[int][]string{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Slash).Line
			fc.lines[line] = append(fc.lines[line], c.Text)
		}
	}
	cache[f] = fc
	return fc
}

// Has reports whether node's line, or the line directly above it, carries
// a //vet:<name> annotation in its file.
func Has(pass *analysis.Pass, node ast.Node, name string) bool {
	pos := pass.Fset.Position(node.Pos())
	var file *ast.File
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename == pos.Filename {
			file = f
			break
		}
	}
	if file == nil {
		return false
	}
	fc := index(pass.Fset, file)
	want := "//vet:" + name
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, text := range fc.lines[line] {
			if text == want || strings.HasPrefix(text, want+" ") {
				return true
			}
		}
	}
	return false
}
