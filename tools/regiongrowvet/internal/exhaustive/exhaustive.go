// Package exhaustive implements the regiongrowvet analyzer that makes
// the repo's enums closed under extension: every switch over EngineKind,
// TiePolicy, core.EventKind, or the distengine frame type must either
// name every declared constant of the type or carry a default clause
// that terminates (returns — typically an error — or panics). Adding a
// sixth engine kind, a new stage event, or a new wire frame then breaks
// the build loudly at every switch that has not decided what to do with
// it, instead of falling through silently.
//
// The check is cross-package: a switch in cmd/regiongrow over
// core.EventKind sees the constant set of the defining package through
// its export data.
package exhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"regiongrow/tools/regiongrowvet/internal/vetutil"
)

// targets names the enum types whose switches must be exhaustive, as
// "package path.TypeName". regiongrow.TiePolicy and regiongrow.StageEvent
// kinds are aliases of the rag/core types, so they resolve to the same
// named types.
var targets = map[string]bool{
	"regiongrow.EngineKind":                    true,
	"regiongrow/internal/rag.TiePolicy":        true,
	"regiongrow/internal/core.EventKind":       true,
	"regiongrow/internal/distengine.frameType": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "rgexhaustive",
	Doc: "flag non-exhaustive switches over EngineKind, TiePolicy, EventKind, and the distengine frame type\n\n" +
		"A switch over one of the repo's enums must name every declared constant or have a " +
		"default that returns or panics, so adding an engine kind or wire frame cannot fall " +
		"through silently.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		sw := n.(*ast.SwitchStmt)
		if sw.Tag == nil || vetutil.InTestFile(pass, sw.Pos()) {
			return
		}
		tagType := pass.TypesInfo.TypeOf(sw.Tag)
		named := namedTarget(tagType)
		if named == nil {
			return
		}
		checkSwitch(pass, sw, named)
	})
	return nil, nil
}

// namedTarget resolves t to one of the target named types, through
// aliases.
func namedTarget(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	if targets[obj.Pkg().Path()+"."+obj.Name()] {
		return named
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, named *types.Named) {
	consts := declaredConsts(pass, named)
	if len(consts) == 0 {
		return
	}

	covered := map[types.Object]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			// Resolve the case expression to a declared constant of the
			// type, through selector or plain identifier (covers aliased
			// re-exports like regiongrow.RandomTie = rag.Random: the
			// TypesInfo value is the same constant).
			if obj := caseObject(pass, e); obj != nil {
				covered[obj] = true
				continue
			}
			// A case expression that is a constant value but not a named
			// constant (e.g. a literal): match by value.
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				for _, c := range consts {
					if c.Val().ExactString() == tv.Value.ExactString() {
						covered[c] = true
					}
				}
			}
		}
	}

	if defaultClause != nil {
		if terminates(defaultClause) {
			return
		}
		pass.Reportf(defaultClause.Pos(),
			"default clause of a switch over %s neither returns nor panics: an unhandled %s value would fall through silently (return an error for unknown values)",
			named.Obj().Name(), named.Obj().Name())
		return
	}

	var missing []string
	for _, c := range consts {
		matched := false
		for obj := range covered {
			if sameConst(obj, c) {
				matched = true
				break
			}
		}
		if !matched {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s is not exhaustive: missing %s (cover every constant or add a default that returns an error)",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// declaredConsts lists the package-level constants of exactly this named
// type, deduplicated by value. It scans the defining package's scope, the
// current package's scope, and every direct import's scope: under the
// unitchecker an *indirectly* imported package is reconstructed from the
// direct import's export data and its scope holds only the names that
// API references — the defining package's constants can be invisible
// there, while their re-exports (regiongrow.EventSplitStart =
// core.EventSplitStart) are constants of the same type and value in the
// re-exporting package's complete scope. The tag type is nameable from
// the current package, so one of these scopes always has the full set.
func declaredConsts(pass *analysis.Pass, named *types.Named) []*types.Const {
	defining := named.Obj().Pkg()
	byValue := map[string]*types.Const{}
	addScope := func(scope *types.Scope) {
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(types.Unalias(c.Type()), named) {
				continue
			}
			key := c.Val().ExactString()
			// Prefer the defining package's own constant for its canonical
			// name in diagnostics.
			if prev, dup := byValue[key]; dup && (prev.Pkg() == defining || c.Pkg() != defining) {
				continue
			}
			byValue[key] = c
		}
	}
	addScope(defining.Scope())
	addScope(pass.Pkg.Scope())
	for _, imp := range pass.Pkg.Imports() {
		addScope(imp.Scope())
	}
	out := make([]*types.Const, 0, len(byValue))
	for _, c := range byValue {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Val().ExactString() < out[j].Val().ExactString() })
	return out
}

// caseObject resolves a case expression to the constant object it names,
// if any.
func caseObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(x)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(x.Sel)
	}
	return nil
}

// sameConst reports whether obj covers the declared constant c: the same
// object, or a constant of the same type and value (aliased re-exports
// like regiongrow.SmallestIDTie for rag.SmallestID).
func sameConst(obj types.Object, c *types.Const) bool {
	if obj == c {
		return true
	}
	oc, ok := obj.(*types.Const)
	if !ok {
		return false
	}
	return types.Identical(types.Unalias(oc.Type()), types.Unalias(c.Type())) &&
		oc.Val().ExactString() == c.Val().ExactString()
}

// terminates reports whether the clause body always leaves the enclosing
// function: its last statement is a return, a panic, or an
// unconditionally-terminating block. This is a syntactic approximation —
// precise enough for default clauses, which in this repo either return
// an error or panic with a diagnostic.
func terminates(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return false
	}
	return stmtTerminates(cc.Body[len(cc.Body)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			// log.Fatalf-style terminators.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Fatal") {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return stmtTerminates(s.List[len(s.List)-1])
	default:
		return false
	}
}
