package exhaustive

import (
	"testing"

	"regiongrow/tools/regiongrowvet/internal/vettest"
)

func TestFixture(t *testing.T) {
	vettest.Run(t, Analyzer, "../../testdata/exhaustive", "regiongrow/internal/distengine")
}

// The analyzer keys on the fully qualified type: an identically named
// frameType declared in an unrelated package is not one of the repo's
// enums, so the same fixture under another path must be silent.
func TestOtherPackageSilent(t *testing.T) {
	vettest.RunEmpty(t, Analyzer, "../../testdata/exhaustive", "example.com/other")
}
