// Package vettest is a minimal analysistest replacement: the vendored
// x/tools subset that ships in GOROOT has go/analysis and the
// unitchecker but not go/analysis/analysistest or go/packages, so this
// harness loads fixture packages by hand. It parses every .go file in a
// testdata directory, type-checks it under a caller-chosen import path
// (the analyzers scope themselves by package path, so fixtures can
// impersonate regiongrow/internal/distengine without living there), runs
// one analyzer, and diffs the diagnostics against `// want "regexp"`
// comments in the fixtures.
//
// Fixtures import only the standard library — they are compiled with the
// source importer, which cannot resolve module-local paths. This is why
// the connguard fixture declares a structural fake conn and the
// exhaustive fixture declares its own enum under the impersonated path
// rather than importing the real types.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// expectation is one `// want "re"` comment: a diagnostic whose message
// matches re must be reported on that file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRx = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture package in dir under the import path pkgPath,
// runs a, and reports any mismatch between diagnostics and the fixtures'
// `// want` comments as test failures.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()

	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(t, path, src)...)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf: map[*analysis.Analyzer]interface{}{
			inspect.Analyzer: inspector.New(files),
		},
		ReadFile: os.ReadFile,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// Match each diagnostic to exactly one expectation at its position.
	var unexpected []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected,
				fmt.Sprintf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
		}
	}
	var missed []string
	for _, w := range wants {
		if !w.hit {
			missed = append(missed,
				fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re))
		}
	}
	sort.Strings(unexpected)
	sort.Strings(missed)
	for _, s := range append(unexpected, missed...) {
		t.Error(s)
	}
}

// RunEmpty asserts the analyzer reports nothing for the fixture under
// pkgPath — used to prove package scoping: the same code that trips an
// analyzer inside regiongrow/internal/... must be silent elsewhere.
func RunEmpty(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()

	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf: map[*analysis.Analyzer]interface{}{
			inspect.Analyzer: inspector.New(files),
		},
		ReadFile: os.ReadFile,
		Report: func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			t.Errorf("%s:%d: diagnostic outside analyzer scope (%s): %s",
				filepath.Base(pos.Filename), pos.Line, pkgPath, d.Message)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
}

// parseWants extracts `// want "re"` expectations from one fixture file.
func parseWants(t *testing.T, path string, src []byte) []*expectation {
	t.Helper()
	var out []*expectation
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRx.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// The capture is a Go-string-style escaped regexp; undo the two
		// escapes the fixtures use (\" and \\).
		pat := strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(m[1])
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
		}
		out = append(out, &expectation{file: path, line: i + 1, re: re})
	}
	return out
}
