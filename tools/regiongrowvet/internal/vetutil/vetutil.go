// Package vetutil holds the small helpers the regiongrowvet analyzers
// share: package scoping and test-file filtering.
package vetutil

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// InScope reports whether the pass's package path is one of paths.
// go vet analyzes test variants of a package under paths like
// "regiongrow/internal/rag.test" and "regiongrow/internal/rag
// [regiongrow/internal/rag.test]"; those match their base package.
func InScope(pass *analysis.Pass, paths map[string]bool) bool {
	p := pass.Pkg.Path()
	if i := strings.IndexByte(p, ' '); i >= 0 {
		p = p[:i]
	}
	p = strings.TrimSuffix(p, ".test")
	p = strings.TrimSuffix(p, "_test")
	return paths[p]
}

// InTestFile reports whether pos lies in a _test.go file. The invariants
// the analyzers prove are about production code; tests exercise
// nondeterminism and bare loops on purpose.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
