// Command regiongrowvet is the repo's custom analyzer suite. It statically
// enforces the invariants the rest of the repository is built on:
//
//   - determinism: no map-iteration-order or wall-clock/randomness leaks in
//     the segmentation kernels (byte-identical labels are the cache-key and
//     distributed-protocol contract);
//   - ctxloop: engine loops respect context cancellation (the Segmenter
//     contract: cancel aborts within one split/band/merge iteration);
//   - connguard: socket reads and writes in the distributed engine, the
//     server, and the fleet gateway are deadline-bounded (the no-hang
//     guarantee);
//   - exhaustive: switches over the repo's enums (EngineKind, TiePolicy,
//     core.EventKind, the distengine frame type) cannot silently fall
//     through when a constant is added.
//
// The binary speaks the go vet vettool protocol. Run it over the main
// module as:
//
//	go build -o /tmp/regiongrowvet ./tools/regiongrowvet
//	go vet -vettool=/tmp/regiongrowvet ./...
//
// Deliberate exceptions are annotated at the offending line with a
// narrowly-scoped //vet: comment (//vet:timing, //vet:ordered,
// //vet:noctx, //vet:nodeadline), each carrying a justification.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"regiongrow/tools/regiongrowvet/internal/connguard"
	"regiongrow/tools/regiongrowvet/internal/ctxloop"
	"regiongrow/tools/regiongrowvet/internal/determinism"
	"regiongrow/tools/regiongrowvet/internal/exhaustive"
)

func main() {
	unitchecker.Main(
		determinism.Analyzer,
		ctxloop.Analyzer,
		connguard.Analyzer,
		exhaustive.Analyzer,
	)
}
