// Fixture for the rgconnguard analyzer, type-checked under
// regiongrow/internal/distengine (in scope). fakeConn is structurally
// net.Conn-like (deadline setters + Read/Write), which is exactly what
// the analyzer keys on — fixtures cannot import module-local packages,
// and net itself is not needed.
package fixture

import (
	"bufio"
	"time"
)

type fakeConn struct{}

func (fakeConn) Read(p []byte) (int, error)         { return 0, nil }
func (fakeConn) Write(p []byte) (int, error)        { return 0, nil }
func (fakeConn) SetDeadline(t time.Time) error      { return nil }
func (fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (fakeConn) SetWriteDeadline(t time.Time) error { return nil }

// unguardedWrite is the true positive: a silent peer blocks this
// goroutine forever.
func unguardedWrite(c fakeConn, p []byte) {
	c.Write(p) // want "conn.Write on c without a prior SetWriteDeadline"
}

// guardedWrite sets the matching deadline first — not reported.
func guardedWrite(c fakeConn, p []byte) {
	c.SetWriteDeadline(time.Now().Add(time.Second))
	c.Write(p)
}

// bothGuarded covers both directions with one SetDeadline — not
// reported.
func bothGuarded(c fakeConn, p []byte) {
	c.SetDeadline(time.Now().Add(time.Second))
	c.Read(p)
	c.Write(p)
}

// wrongDirection guards reads but then writes: the write is still
// unbounded.
func wrongDirection(c fakeConn, p []byte) {
	c.SetReadDeadline(time.Now().Add(time.Second))
	c.Write(p) // want "conn.Write on c without a prior SetWriteDeadline"
}

// wrapUnguarded buffers an unguarded conn — buffered frame I/O is still
// socket I/O.
func wrapUnguarded(c fakeConn) *bufio.Reader {
	return bufio.NewReader(c) // want "bufio.NewReader over a conn on c without a prior SetReadDeadline"
}

// wrapGuarded sets the read deadline before wrapping — not reported.
func wrapGuarded(c fakeConn) *bufio.Reader {
	c.SetReadDeadline(time.Now().Add(time.Second))
	return bufio.NewReader(c)
}

// managedElsewhere is the annotated false positive: the caller owns the
// deadline (the pattern serveConn uses for its heartbeat-refreshed
// conns).
func managedElsewhere(c fakeConn, p []byte) {
	c.Read(p) //vet:nodeadline deadline refreshed by the caller per frame
}

// distinctConns must not satisfy each other's guards: a deadline on a is
// no bound on b.
func distinctConns(a, b fakeConn, p []byte) {
	a.SetWriteDeadline(time.Now().Add(time.Second))
	b.Write(p) // want "conn.Write on b without a prior SetWriteDeadline"
}
