// Fixture for the rgctxloop analyzer, type-checked under
// regiongrow/internal/dpengine (in scope). kernelWork is declared in
// this package, so calling it counts as module work — the same trichotomy
// the real engines present: check ctx, forward ctx, or do no cancellable
// work.
package fixture

import "context"

func kernelWork() {}

func step(ctx context.Context) {}

// uncheckedLoop is the true positive: a phase-driving loop running
// module code that cancellation cannot interrupt.
func uncheckedLoop(ctx context.Context, rounds int) {
	for i := 0; i < rounds; i++ { // want "never checks or forwards the context"
		kernelWork()
	}
}

// checkedLoop polls ctx.Err() per iteration — not reported.
func checkedLoop(ctx context.Context, rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		kernelWork()
	}
	return nil
}

// forwardingLoop delegates the check by passing ctx down — not reported.
func forwardingLoop(ctx context.Context, rounds int) {
	for i := 0; i < rounds; i++ {
		step(ctx)
	}
}

// spawningLoop hands ctx to the goroutines it launches; the workers own
// the cancellation check — not reported.
func spawningLoop(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		go step(ctx)
	}
}

// boundedLoop is the annotated false positive: a fixed-trip-count loop
// that cannot block.
func boundedLoop(ctx context.Context) {
	//vet:noctx fixed 4-iteration prologue, cannot block
	for i := 0; i < 4; i++ {
		kernelWork()
	}
}

// arithLoop calls nothing from the module — index arithmetic cannot
// block, so it is exempt without annotation.
func arithLoop(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// uncancellableHelper has no ctx parameter at all — out of the
// analyzer's contract, not reported.
func uncancellableHelper(rounds int) {
	for i := 0; i < rounds; i++ {
		kernelWork()
	}
}
