// Fixture for the rgdeterminism analyzer. The vettest harness
// type-checks this package under the path regiongrow/internal/rag (in
// scope) and again under regiongrow/internal/server (out of scope, must
// be silent). Only the standard library may be imported.
package fixture

import (
	_ "math/rand" // want "math/rand is banned in kernel packages"
	"slices"
	"sort"
	"time"
)

// unsortedOrder is the true positive the analyzer exists for: the slice
// content order is the map's randomized iteration order.
func unsortedOrder(weights map[int]float64) []int {
	var order []int
	for id := range weights { // want "range over map writes to order without a subsequent sort"
		order = append(order, id)
	}
	return order
}

// sortedOrder normalizes afterwards — not reported.
func sortedOrder(weights map[int]float64) []int {
	var order []int
	for id := range weights {
		order = append(order, id)
	}
	sort.Ints(order)
	return order
}

// slicesSorted uses the slices package's sort — also recognized.
func slicesSorted(weights map[int]float64) []int {
	var order []int
	for id := range weights {
		order = append(order, id)
	}
	slices.Sort(order)
	return order
}

// minWeight is the annotated false positive: a min reduction commutes
// across iteration orders, so the suppression applies.
func minWeight(weights map[int]float64) float64 {
	best := -1.0
	//vet:ordered min reduction commutes across iteration orders
	for _, w := range weights {
		if best < 0 || w < best {
			best = w
		}
	}
	return best
}

// prune only deletes — removing a set of distinct keys commutes, so
// delete is deliberately not a write.
func prune(m map[int]int) {
	for k := range m {
		if k < 0 {
			delete(m, k)
		}
	}
}

// localOnly writes only to loop-local state — not reported.
func localOnly(weights map[int]float64) {
	for _, w := range weights {
		v := w * 2
		v++
		_ = v
	}
}

// stamp leaks the wall clock with no annotation.
func stamp() time.Time {
	return time.Now() // want "time.Now in a kernel package"
}

// sinceLeak likewise for time.Since.
func sinceLeak(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in a kernel package"
}

// timedPhase is the annotated exception: wall time feeds a stats report,
// never labels or wire bytes.
func timedPhase(work func()) time.Duration {
	start := time.Now() //vet:timing stage wall-time reporting only
	work()
	return time.Since(start) //vet:timing stage wall-time reporting only
}
