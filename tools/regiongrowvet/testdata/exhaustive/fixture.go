// Fixture for the rgexhaustive analyzer, type-checked under
// regiongrow/internal/distengine so the locally declared frameType is
// the real target "regiongrow/internal/distengine.frameType". The same
// files type-checked under any other path must be silent: an identically
// named type elsewhere is not one of the repo's enums.
package fixture

import "errors"

type frameType byte

const (
	frameJob frameType = iota + 1
	frameResult
	frameError
)

// incomplete is the true positive: adding a frame kind would fall
// through silently here.
func incomplete(ft frameType) string {
	switch ft { // want "switch over frameType is not exhaustive: missing frameError, frameResult"
	case frameJob:
		return "job"
	}
	return ""
}

// complete names every constant — not reported.
func complete(ft frameType) string {
	switch ft {
	case frameJob:
		return "job"
	case frameResult:
		return "result"
	case frameError:
		return "error"
	}
	return ""
}

// defaulted is the sanctioned suppression: a default that returns an
// error decides what happens to unknown values.
func defaulted(ft frameType) (string, error) {
	switch ft {
	case frameJob:
		return "job", nil
	default:
		return "", errors.New("unknown frame kind")
	}
}

// panicking defaults also terminate — not reported.
func panicking(ft frameType) string {
	switch ft {
	case frameJob:
		return "job"
	default:
		panic("unknown frame kind")
	}
}

// swallowed has a default that neither returns nor panics: an unknown
// value silently becomes "?" and flows on.
func swallowed(ft frameType) string {
	s := ""
	switch ft {
	case frameJob:
		s = "job"
	default: // want "default clause of a switch over frameType neither returns nor panics"
		s = "?"
	}
	return s
}

// otherEnum is not one of the repo's enums — switches over it are not
// checked.
type otherEnum int

const (
	alpha otherEnum = iota
	beta
)

func overOther(e otherEnum) string {
	switch e {
	case alpha:
		return "a"
	}
	return ""
}
